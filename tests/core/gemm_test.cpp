#include "core/gemm.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rng.h"

namespace fluid::core {
namespace {

// Reference implementation for cross-checking.
void NaiveGemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const std::vector<float>& a,
               std::int64_t lda, const std::vector<float>& b, std::int64_t ldb,
               float beta, std::vector<float>& c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] =
          static_cast<float>(alpha * acc + beta * c[i * ldc + j]);
    }
  }
}

struct GemmCase {
  bool ta, tb;
  std::int64_t m, n, k;
  float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const auto p = GetParam();
  Rng rng(p.m * 131 + p.n * 17 + p.k);
  const std::int64_t lda = p.ta ? p.m : p.k;
  const std::int64_t ldb = p.tb ? p.k : p.n;
  const std::int64_t rows_a = p.ta ? p.k : p.m;
  const std::int64_t rows_b = p.tb ? p.n : p.k;
  std::vector<float> a(static_cast<std::size_t>(rows_a * lda));
  std::vector<float> b(static_cast<std::size_t>(rows_b * ldb));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
  for (auto& v : c) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> expected = c;

  Gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb,
       p.beta, c.data(), p.n);
  NaiveGemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, lda, b, ldb, p.beta,
            expected, p.n);

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-3F) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposesAndShapes, GemmParamTest,
    ::testing::Values(
        GemmCase{false, false, 4, 5, 6, 1.0F, 0.0F},
        GemmCase{false, false, 16, 144, 9, 1.0F, 0.0F},
        GemmCase{true, false, 7, 3, 5, 1.0F, 0.0F},
        GemmCase{false, true, 3, 7, 5, 1.0F, 0.0F},
        GemmCase{true, true, 6, 6, 6, 1.0F, 0.0F},
        GemmCase{false, false, 5, 5, 5, 2.5F, 0.0F},
        GemmCase{false, false, 5, 5, 5, 1.0F, 1.0F},
        GemmCase{true, false, 8, 2, 9, -1.0F, 0.5F},
        GemmCase{false, true, 1, 1, 32, 1.0F, 0.0F},
        GemmCase{false, false, 1, 64, 1, 1.0F, 0.0F}));

// Property sweep: every transpose combination × shapes from degenerate to
// multi-block (129 > MC=48 and > 2·NR), × alpha/beta edge cases, with
// padded (non-trivial) leading dimensions. The padding bytes are seeded
// with a sentinel and checked untouched afterwards.
TEST(GemmPropertyTest, AllTransposesShapesTailsAndStrides) {
  const std::int64_t sizes[] = {1, 3, 17, 64, 129};
  const struct {
    float alpha, beta;
  } scales[] = {{1.0F, 0.0F}, {1.0F, 1.0F}, {-0.5F, 2.5F}, {0.0F, 0.5F}};
  constexpr float kSentinel = 1234.5F;

  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      for (const std::int64_t m : sizes) {
        for (const std::int64_t n : sizes) {
          for (const std::int64_t k : sizes) {
            // Skip some of the grid to keep runtime sane; keep every case
            // where any dimension is a tail (1, 3, 17) plus the big ones.
            if (m == 64 && n == 64 && k == 17) continue;
            const auto& sc = scales[static_cast<std::size_t>(
                (m + 3 * n + 7 * k + (ta ? 1 : 0) + 2 * (tb ? 1 : 0)) % 4)];
            Rng rng(m * 1000003 + n * 1009 + k + (ta ? 7 : 0) + (tb ? 13 : 0));
            const std::int64_t pad = (m + n + k) % 5;  // 0..4 extra columns
            const std::int64_t lda = (ta ? m : k) + pad;
            const std::int64_t ldb = (tb ? k : n) + pad;
            const std::int64_t ldc = n + pad;
            const std::int64_t rows_a = ta ? k : m;
            const std::int64_t rows_b = tb ? n : k;
            std::vector<float> a(static_cast<std::size_t>(rows_a * lda),
                                 kSentinel);
            std::vector<float> b(static_cast<std::size_t>(rows_b * ldb),
                                 kSentinel);
            std::vector<float> c(static_cast<std::size_t>(m * ldc), kSentinel);
            for (std::int64_t i = 0; i < rows_a; ++i) {
              for (std::int64_t j = 0; j < (ta ? m : k); ++j) {
                a[static_cast<std::size_t>(i * lda + j)] =
                    static_cast<float>(rng.Uniform(-1, 1));
              }
            }
            for (std::int64_t i = 0; i < rows_b; ++i) {
              for (std::int64_t j = 0; j < (tb ? k : n); ++j) {
                b[static_cast<std::size_t>(i * ldb + j)] =
                    static_cast<float>(rng.Uniform(-1, 1));
              }
            }
            for (std::int64_t i = 0; i < m; ++i) {
              for (std::int64_t j = 0; j < n; ++j) {
                c[static_cast<std::size_t>(i * ldc + j)] =
                    static_cast<float>(rng.Uniform(-1, 1));
              }
            }
            std::vector<float> expected = c;

            Gemm(ta, tb, m, n, k, sc.alpha, a.data(), lda, b.data(), ldb,
                 sc.beta, c.data(), ldc);
            NaiveGemm(ta, tb, m, n, k, sc.alpha, a, lda, b, ldb, sc.beta,
                      expected, ldc);

            const std::string where =
                "ta=" + std::to_string(ta) + " tb=" + std::to_string(tb) +
                " m=" + std::to_string(m) + " n=" + std::to_string(n) +
                " k=" + std::to_string(k);
            float max_err = 0.0F;
            for (std::int64_t i = 0; i < m; ++i) {
              for (std::int64_t j = 0; j < n; ++j) {
                const auto idx = static_cast<std::size_t>(i * ldc + j);
                max_err = std::max(max_err, std::abs(c[idx] - expected[idx]));
              }
              // Stride padding must be untouched.
              for (std::int64_t j = n; j < ldc; ++j) {
                ASSERT_EQ(c[static_cast<std::size_t>(i * ldc + j)], kSentinel)
                    << where << " clobbered C padding at row " << i;
              }
            }
            ASSERT_LE(max_err, 2e-3F) << where;
          }
        }
      }
    }
  }
}

// The old kernel skipped k-steps where alpha*A(i,p) == 0, silently eating
// NaN/Inf from B (IEEE 754: 0 × NaN = NaN). The blocked kernel must
// propagate them.
TEST(GemmTest, ZeroTimesNanPropagates) {
  const float a[2] = {0.0F, 0.0F};  // row of zeros
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float b[2] = {nan, nan};  // column with NaN
  float c[1] = {7.0F};
  Gemm(false, false, 1, 1, 2, 1.0F, a, 2, b, 1, 0.0F, c, 1);
  EXPECT_TRUE(std::isnan(c[0])) << "0 x NaN must stay NaN, got " << c[0];
}

TEST(GemmTest, ZeroTimesInfPropagatesNan) {
  const float a[1] = {0.0F};
  const float b[1] = {std::numeric_limits<float>::infinity()};
  float c[1] = {0.0F};
  Gemm(false, false, 1, 1, 1, 1.0F, a, 1, b, 1, 0.0F, c, 1);
  EXPECT_TRUE(std::isnan(c[0])) << "0 x Inf must be NaN, got " << c[0];
}

// Thread-count independence: the kernel partitions work so each C element
// is accumulated in the same floating-point order at any pool size.
TEST(GemmDeterminismTest, OneAndFourThreadsAgreeBitwise) {
  const std::int64_t m = 129, n = 65, k = 200;  // spans several MC/KC blocks
  Rng rng(99);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> c1(static_cast<std::size_t>(m * n), 0.5F);
  std::vector<float> c4 = c1;

  const int saved = NumThreads();
  SetNumThreads(1);
  Gemm(false, false, m, n, k, 1.25F, a.data(), k, b.data(), n, 0.75F,
       c1.data(), n);
  SetNumThreads(4);
  Gemm(false, false, m, n, k, 1.25F, a.data(), k, b.data(), n, 0.75F,
       c4.data(), n);
  SetNumThreads(saved);

  for (std::size_t i = 0; i < c1.size(); ++i) {
    ASSERT_EQ(c1[i], c4[i]) << "thread-count-dependent result at " << i;
  }
}

TEST(GemmTest, ZeroSizedDimensionsAreNoOps) {
  float c[4] = {1, 2, 3, 4};
  Gemm(false, false, 0, 2, 3, 1.0F, nullptr, 3, nullptr, 2, 0.0F, c, 2);
  Gemm(false, false, 2, 0, 3, 1.0F, nullptr, 3, nullptr, 0, 0.0F, c, 0);
  EXPECT_EQ(c[0], 1.0F);
}

TEST(GemmTest, KZeroScalesCByBeta) {
  float c[2] = {2.0F, 4.0F};
  Gemm(false, false, 1, 2, 0, 1.0F, nullptr, 1, nullptr, 2, 0.5F, c, 2);
  EXPECT_EQ(c[0], 1.0F);
  EXPECT_EQ(c[1], 2.0F);
}

TEST(GemmTest, BetaZeroOverwritesGarbage) {
  const float a[1] = {2.0F};
  const float b[1] = {3.0F};
  float c[1] = {123.0F};
  Gemm(false, false, 1, 1, 1, 1.0F, a, 1, b, 1, 0.0F, c, 1);
  EXPECT_EQ(c[0], 6.0F);
}

}  // namespace
}  // namespace fluid::core
