#include "core/gemm.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace fluid::core {
namespace {

// Reference implementation for cross-checking.
void NaiveGemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const std::vector<float>& a,
               std::int64_t lda, const std::vector<float>& b, std::int64_t ldb,
               float beta, std::vector<float>& c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] =
          static_cast<float>(alpha * acc + beta * c[i * ldc + j]);
    }
  }
}

struct GemmCase {
  bool ta, tb;
  std::int64_t m, n, k;
  float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const auto p = GetParam();
  Rng rng(p.m * 131 + p.n * 17 + p.k);
  const std::int64_t lda = p.ta ? p.m : p.k;
  const std::int64_t ldb = p.tb ? p.k : p.n;
  const std::int64_t rows_a = p.ta ? p.k : p.m;
  const std::int64_t rows_b = p.tb ? p.n : p.k;
  std::vector<float> a(static_cast<std::size_t>(rows_a * lda));
  std::vector<float> b(static_cast<std::size_t>(rows_b * ldb));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
  for (auto& v : c) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> expected = c;

  Gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb,
       p.beta, c.data(), p.n);
  NaiveGemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a, lda, b, ldb, p.beta,
            expected, p.n);

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-3F) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposesAndShapes, GemmParamTest,
    ::testing::Values(
        GemmCase{false, false, 4, 5, 6, 1.0F, 0.0F},
        GemmCase{false, false, 16, 144, 9, 1.0F, 0.0F},
        GemmCase{true, false, 7, 3, 5, 1.0F, 0.0F},
        GemmCase{false, true, 3, 7, 5, 1.0F, 0.0F},
        GemmCase{true, true, 6, 6, 6, 1.0F, 0.0F},
        GemmCase{false, false, 5, 5, 5, 2.5F, 0.0F},
        GemmCase{false, false, 5, 5, 5, 1.0F, 1.0F},
        GemmCase{true, false, 8, 2, 9, -1.0F, 0.5F},
        GemmCase{false, true, 1, 1, 32, 1.0F, 0.0F},
        GemmCase{false, false, 1, 64, 1, 1.0F, 0.0F}));

TEST(GemmTest, ZeroSizedDimensionsAreNoOps) {
  float c[4] = {1, 2, 3, 4};
  Gemm(false, false, 0, 2, 3, 1.0F, nullptr, 3, nullptr, 2, 0.0F, c, 2);
  Gemm(false, false, 2, 0, 3, 1.0F, nullptr, 3, nullptr, 0, 0.0F, c, 0);
  EXPECT_EQ(c[0], 1.0F);
}

TEST(GemmTest, KZeroScalesCByBeta) {
  float c[2] = {2.0F, 4.0F};
  Gemm(false, false, 1, 2, 0, 1.0F, nullptr, 1, nullptr, 2, 0.5F, c, 2);
  EXPECT_EQ(c[0], 1.0F);
  EXPECT_EQ(c[1], 2.0F);
}

TEST(GemmTest, BetaZeroOverwritesGarbage) {
  const float a[1] = {2.0F};
  const float b[1] = {3.0F};
  float c[1] = {123.0F};
  Gemm(false, false, 1, 1, 1, 1.0F, a, 1, b, 1, 0.0F, c, 1);
  EXPECT_EQ(c[0], 6.0F);
}

}  // namespace
}  // namespace fluid::core
