#include "core/tensor_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::core {
namespace {

TEST(TensorOpsTest, AddSubMulElementwise) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  EXPECT_EQ(Add(a, b).at(1), 22.0F);
  EXPECT_EQ(Sub(b, a).at(2), 27.0F);
  EXPECT_EQ(Mul(a, b).at(0), 10.0F);
}

TEST(TensorOpsTest, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(Add(a, b), Error);
  EXPECT_THROW(Mul(a, b), Error);
}

TEST(TensorOpsTest, ScaleAndAxpy) {
  Tensor a(Shape{2}, {1, -2});
  EXPECT_EQ(Scale(a, 3.0F).at(1), -6.0F);
  Tensor acc(Shape{2}, {10, 10});
  Axpy(0.5F, a, acc);
  EXPECT_EQ(acc.at(0), 10.5F);
  EXPECT_EQ(acc.at(1), 9.0F);
}

TEST(TensorOpsTest, Reductions) {
  Tensor a(Shape{4}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(Sum(a), 10.0);
  EXPECT_DOUBLE_EQ(Mean(a), 2.5);
  EXPECT_EQ(Max(a), 4.0F);
  EXPECT_EQ(Argmax(a), 3);
  EXPECT_NEAR(Norm(a), std::sqrt(30.0), 1e-9);
}

TEST(TensorOpsTest, ArgmaxRowsPerRow) {
  Tensor logits(Shape{2, 3}, {0.1F, 0.9F, 0.2F, 5.0F, 1.0F, 2.0F});
  const auto preds = ArgmaxRows(logits);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], 1);
  EXPECT_EQ(preds[1], 0);
}

TEST(TensorOpsTest, MatMulSmallKnownResult) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.shape(), Shape({2, 2}));
  EXPECT_EQ(c.at(0), 58.0F);
  EXPECT_EQ(c.at(1), 64.0F);
  EXPECT_EQ(c.at(2), 139.0F);
  EXPECT_EQ(c.at(3), 154.0F);
}

TEST(TensorOpsTest, MatMulChecksInnerDim) {
  EXPECT_THROW(MatMul(Tensor({2, 3}), Tensor({2, 3})), Error);
}

TEST(TensorOpsTest, AllCloseAndMaxAbsDiff) {
  Tensor a(Shape{2}, {1.0F, 2.0F});
  Tensor b(Shape{2}, {1.0F, 2.00001F});
  EXPECT_TRUE(AllClose(a, b, 1e-4F));
  EXPECT_FALSE(AllClose(a, b, 1e-7F));
  EXPECT_NEAR(MaxAbsDiff(a, b), 1e-5F, 1e-6F);
  EXPECT_FALSE(AllClose(a, Tensor({3})));
}

}  // namespace
}  // namespace fluid::core
