#include "core/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::core {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntUnbiasedCoverage) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.UniformInt(7)];
  for (const int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.UniformInt(0), Error);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(21);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(17);
  const auto perm = rng.Permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(33);
  Rng child = parent.Split();
  // The child stream must not replay the parent's output.
  Rng parent2(33);
  parent2.NextU64();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (child.NextU64() == parent2.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace fluid::core
