#include "core/shape.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::core {
namespace {

TEST(ShapeTest, DefaultIsRankZeroWithOneElement) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, NumelIsProductOfDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
}

TEST(ShapeTest, ZeroExtentGivesZeroNumel) {
  Shape s{4, 0, 7};
  EXPECT_EQ(s.numel(), 0);
}

TEST(ShapeTest, NegativeExtentThrows) {
  EXPECT_THROW(Shape({2, -1}), Error);
}

TEST(ShapeTest, DimSupportsNegativeAxes) {
  Shape s{5, 6, 7};
  EXPECT_EQ(s.dim(0), 5);
  EXPECT_EQ(s.dim(-1), 7);
  EXPECT_EQ(s.dim(-3), 5);
  EXPECT_THROW(s.dim(3), Error);
  EXPECT_THROW(s.dim(-4), Error);
}

TEST(ShapeTest, StridesAreRowMajor) {
  Shape s{2, 3, 4};
  const auto strides = s.Strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, OffsetMatchesStrides) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.Offset({0, 0, 0}), 0);
  EXPECT_EQ(s.Offset({1, 2, 3}), 23);
  EXPECT_EQ(s.Offset({1, 0, 2}), 14);
}

TEST(ShapeTest, OffsetChecksBounds) {
  Shape s{2, 3};
  EXPECT_THROW(s.Offset({2, 0}), Error);
  EXPECT_THROW(s.Offset({0, 3}), Error);
  EXPECT_THROW(s.Offset({0}), Error);
}

TEST(ShapeTest, EqualityComparesDims) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, ToStringIsReadable) {
  EXPECT_EQ(Shape({1, 28, 28}).ToString(), "[1, 28, 28]");
  EXPECT_EQ(Shape{}.ToString(), "[]");
}

}  // namespace
}  // namespace fluid::core
