#include "core/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::core {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_threads_ = NumThreads(); }
  void TearDown() override { SetNumThreads(saved_threads_); }
  int saved_threads_ = 1;
};

TEST_F(ParallelTest, CoversRangeExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    SetNumThreads(threads);
    std::vector<std::atomic<int>> hits(1000);
    ParallelFor(0, 1000, 7, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " @" << threads;
    }
  }
}

TEST_F(ParallelTest, EmptyAndSingleElementRanges) {
  int calls = 0;
  ParallelFor(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(3, 4, 10, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_EQ(lo, 3);
    EXPECT_EQ(hi, 4);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, ChunkBoundariesIndependentOfThreadCount) {
  auto collect = [](int threads) {
    SetNumThreads(threads);
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks(
        static_cast<std::size_t>(NumChunks(0, 103, 10)));
    ParallelForChunks(0, 103, 10,
                      [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                        chunks[static_cast<std::size_t>(c)] = {lo, hi};
                      });
    return chunks;
  };
  const auto one = collect(1);
  const auto four = collect(4);
  ASSERT_EQ(one.size(), 11u);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one.front(), (std::pair<std::int64_t, std::int64_t>{0, 10}));
  EXPECT_EQ(one.back(), (std::pair<std::int64_t, std::int64_t>{100, 103}));
}

TEST_F(ParallelTest, OrderedChunkReductionIsBitReproducible) {
  std::vector<float> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0F / static_cast<float>(i + 1);
  }
  auto reduce = [&](int threads) {
    SetNumThreads(threads);
    const std::int64_t n = static_cast<std::int64_t>(values.size());
    std::vector<float> partial(static_cast<std::size_t>(NumChunks(0, n, 128)));
    ParallelForChunks(0, n, 128,
                      [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                        float s = 0.0F;
                        for (std::int64_t i = lo; i < hi; ++i) {
                          s += values[static_cast<std::size_t>(i)];
                        }
                        partial[static_cast<std::size_t>(c)] = s;
                      });
    float total = 0.0F;
    for (const float p : partial) total += p;
    return total;
  };
  const float t1 = reduce(1);
  const float t4 = reduce(4);
  EXPECT_EQ(t1, t4);  // bitwise: same chunking, same reduction order
}

TEST_F(ParallelTest, PropagatesBodyException) {
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](std::int64_t lo, std::int64_t) {
                    if (lo == 57) throw Error("boom");
                  }),
      Error);
  // The pool must stay usable after an exception.
  std::atomic<std::int64_t> sum{0};
  ParallelForEach(0, 10, 1, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  SetNumThreads(4);
  std::atomic<int> total{0};
  ParallelForEach(0, 8, 1, [&](std::int64_t) {
    // Nested region: must not deadlock, must still cover its range.
    ParallelFor(0, 10, 2, [&](std::int64_t lo, std::int64_t hi) {
      total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST_F(ParallelTest, SetNumThreadsClampsToOne) {
  SetNumThreads(0);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(-3);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
}

TEST_F(ParallelTest, ParallelForEachVisitsEveryIndex) {
  SetNumThreads(2);
  std::vector<std::atomic<int>> hits(57);
  ParallelForEach(0, 57, 5, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

}  // namespace
}  // namespace fluid::core
