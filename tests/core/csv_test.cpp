#include "core/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/serialize.h"

namespace fluid::core {
namespace {

TEST(CsvTest, HeaderAndRowsRender) {
  CsvWriter csv({"model", "img_s", "acc"});
  csv.Row().Text("Static").Number(11.1, 1).Number(0.989, 3).Done();
  csv.Row().Text("Fluid").Number(28.3, 1).Number(0.992, 3).Done();
  EXPECT_EQ(csv.ToString(),
            "model,img_s,acc\nStatic,11.1,0.989\nFluid,28.3,0.992\n");
  EXPECT_EQ(csv.num_rows(), 2u);
}

TEST(CsvTest, QuotesCommasQuotesAndNewlines) {
  CsvWriter csv({"note"});
  csv.AddRow({"plain"});
  csv.AddRow({"has,comma"});
  csv.AddRow({"has\"quote"});
  csv.AddRow({"has\nnewline"});
  EXPECT_EQ(csv.ToString(),
            "note\nplain\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvTest, RowWidthEnforced) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.AddRow({"only-one"}), Error);
  EXPECT_THROW(csv.Row().Text("x").Done(), Error);
  EXPECT_NO_THROW(csv.Row().Text("x").Integer(2).Done());
}

TEST(CsvTest, EmptyHeaderRejected) {
  EXPECT_THROW(CsvWriter({}), Error);
}

TEST(CsvTest, IntegerAndPrecisionFormatting) {
  CsvWriter csv({"n", "pi"});
  csv.Row().Integer(-42).Number(3.14159, 2).Done();
  EXPECT_EQ(csv.ToString(), "n,pi\n-42,3.14\n");
}

TEST(CsvTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/fluid_csv_test.csv";
  CsvWriter csv({"x"});
  csv.AddRow({"1"});
  ASSERT_TRUE(csv.WriteTo(path).ok());
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(std::string(bytes->begin(), bytes->end()), "x\n1\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fluid::core
