#include "core/error.h"

#include <gtest/gtest.h>

namespace fluid::core {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_NO_THROW(st.ThrowIfError());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NOT_FOUND: missing thing");
  EXPECT_THROW(st.ThrowIfError(), Error);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded, StatusCode::kDataLoss,
        StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsStatus) {
  StatusOr<int> v(Status::Unavailable("down"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnavailable);
  EXPECT_THROW(v.value(), Error);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

TEST(CheckTest, FluidCheckThrowsWithLocation) {
  try {
    FLUID_CHECK_MSG(1 == 2, "impossible");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("impossible"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(FLUID_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace fluid::core
