#include "core/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace fluid::core {
namespace {

TEST(TensorTest, ConstructionZeroInitialises) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (const float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(TensorTest, ConstructionFromDataChecksSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), Error);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({4}, 2.5F);
  for (const float v : t.data()) EXPECT_EQ(v, 2.5F);
}

TEST(TensorTest, FlatAccessChecksBounds) {
  Tensor t({3});
  t.at(2) = 7.0F;
  EXPECT_EQ(t.at(2), 7.0F);
  EXPECT_THROW(t.at(3), Error);
  EXPECT_THROW(t.at(-1), Error);
}

TEST(TensorTest, MultiIndexAccess) {
  Tensor t({2, 3});
  t({1, 2}) = 9.0F;
  EXPECT_EQ(t.at(5), 9.0F);
  EXPECT_EQ(t({1, 2}), 9.0F);
}

TEST(TensorTest, ReshapedPreservesData) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_EQ(r.at(4), 5.0F);
  EXPECT_THROW(t.Reshaped({4, 2}), Error);
}

TEST(TensorTest, UniformRandomRespectsBounds) {
  Rng rng(7);
  Tensor t = Tensor::UniformRandom({1000}, rng, -2.0F, 3.0F);
  for (const float v : t.data()) {
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(TensorTest, NormalRandomHasRoughlyRightMoments) {
  Rng rng(11);
  Tensor t = Tensor::NormalRandom({20000}, rng, 2.0F);
  double sum = 0.0, sq = 0.0;
  for (const float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / t.numel();
  const double var = sq / t.numel() - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.06);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(TensorTest, KaimingUniformBoundScalesWithFanIn) {
  Rng rng(3);
  Tensor t = Tensor::KaimingUniform({64, 64}, rng, 64);
  const float bound = std::sqrt(6.0F / 64.0F);
  for (const float v : t.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::Full({2}, 1.0F);
  Tensor c = t.Clone();
  c.at(0) = 5.0F;
  EXPECT_EQ(t.at(0), 1.0F);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t({100});
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace fluid::core
