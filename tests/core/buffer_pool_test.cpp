// Buffer-pool behavior: size-class capacity, reuse-after-resize,
// cross-thread circulation, discard accounting, tensor recycling RAII,
// debug poisoning, and the counting allocator the memory-discipline
// budgets are measured against.

#include "core/buffer_pool.h"

#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/alloc_count.h"
#include "core/tensor.h"

namespace fluid::core {
namespace {

// Empty both tiers (this thread's caches, then the global lists) so
// pointer-identity assertions see only what the test itself recycled.
void DrainPools() {
  PoolFlushThisThread();
  PoolTrimGlobal();
}

TEST(BufferPoolTest, GetRoundsCapacityUpToTheSizeClass) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  auto v = PoolGet<float>(300);
  EXPECT_EQ(v.size(), 300u);
  EXPECT_GE(v.capacity(), 512u) << "capacity must cover the whole class";
  auto tiny = PoolGet<float>(1);
  EXPECT_GE(tiny.capacity(), 256u) << "small requests round to the "
                                      "smallest class";
  PoolPut(std::move(v));
  PoolPut(std::move(tiny));
}

TEST(BufferPoolTest, ReuseAfterResizeServesTheSameStorage) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  auto a = PoolGet<float>(300);
  const float* storage = a.data();
  PoolPut(std::move(a));
  // 500 still fits the 512 class: the recycled buffer must come back
  // as-is, with no reallocation to satisfy the larger size.
  auto b = PoolGet<float>(500);
  EXPECT_EQ(b.data(), storage);
  EXPECT_EQ(b.size(), 500u);
  PoolPut(std::move(b));
}

TEST(BufferPoolTest, RecycledBuffersCrossThreads) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  // A size class no other machinery touches, so the only buffer in it is
  // the one the worker thread recycles.
  constexpr std::size_t kOddSize = 100000;  // class 2^17 floats
  const float* storage = nullptr;
  std::thread worker([&] {
    auto v = PoolGet<float>(kOddSize);
    storage = v.data();
    PoolPut(std::move(v));
    PoolFlushThisThread();  // spill to the global lists (thread exit
                            // would do the same)
  });
  worker.join();
  auto v = PoolGet<float>(kOddSize);
  EXPECT_EQ(v.data(), storage)
      << "a buffer recycled on one thread must serve the next acquire on "
         "another";
  PoolPut(std::move(v));
}

TEST(BufferPoolTest, PutBelowTheSmallestClassDiscards) {
  const auto before = PoolStatsSnapshot();
  PoolPut(std::vector<float>(10));  // capacity < 256: unpoolable
  const auto after = PoolStatsSnapshot();
  EXPECT_EQ(after.discards, before.discards + 1);
  EXPECT_EQ(after.puts, before.puts);
}

TEST(BufferPoolTest, TensorRecyclingRoundTrip) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  Tensor t = AcquireTensor({4, 100});
  const float* storage = t.data().data();
  RecycleTensor(std::move(t));
  Tensor again = AcquireTensor({500});  // same 512 class
  EXPECT_EQ(again.data().data(), storage);
  RecycleTensor(std::move(again));
}

TEST(BufferPoolTest, PooledTensorRecyclesOnDestruction) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  const float* storage = nullptr;
  {
    PooledTensor p(Shape{64});
    storage = p->data().data();
  }
  Tensor t = AcquireTensor({64});
  EXPECT_EQ(t.data().data(), storage);
  RecycleTensor(std::move(t));
}

TEST(BufferPoolTest, PooledTensorReleaseDetachesOwnership) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  Tensor kept;
  {
    PooledTensor p(Shape{64});
    kept = p.release();
  }  // handle dies without recycling
  Tensor fresh = AcquireTensor({64});
  EXPECT_NE(fresh.data().data(), kept.data().data());
  RecycleTensor(std::move(fresh));
  RecycleTensor(std::move(kept));
}

TEST(BufferPoolTest, AcquireTensorCopyIsDeepAndPooled) {
  Tensor src({2, 3});
  for (std::int64_t i = 0; i < 6; ++i) src.data()[i] = static_cast<float>(i);
  Tensor copy = AcquireTensorCopy(src);
  EXPECT_EQ(copy.shape(), src.shape());
  EXPECT_NE(copy.data().data(), src.data().data());
  for (std::int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(copy.data()[i], static_cast<float>(i));
  }
  RecycleTensor(std::move(copy));
}

TEST(BufferPoolTest, AcquireZeroedTensorClearsRecycledContents) {
  Tensor dirty = AcquireTensor({256});
  std::fill(dirty.data().begin(), dirty.data().end(), 7.0F);
  RecycleTensor(std::move(dirty));
  Tensor z = AcquireZeroedTensor({256});
  for (const float v : z.data()) EXPECT_EQ(v, 0.0F);
  RecycleTensor(std::move(z));
}

#ifndef NDEBUG
TEST(BufferPoolTest, DebugBuildsPoisonRecycledBytes) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  Tensor t = AcquireTensor({256});
  std::fill(t.data().begin(), t.data().end(), 1.0F);
  RecycleTensor(std::move(t));
  Tensor back = AcquireTensor({256});
  const auto* bytes =
      reinterpret_cast<const unsigned char*>(back.data().data());
  for (std::size_t i = 0; i < 256 * sizeof(float); ++i) {
    ASSERT_EQ(bytes[i], 0xAB) << "recycled byte " << i << " not poisoned";
  }
  RecycleTensor(std::move(back));
}
#endif

TEST(BufferPoolTest, PrewarmedClassServesAcquiresWithoutAllocating) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  PoolPrewarm<float>(300, 3);
  const auto before = AllocCount();
  // All three land in the same 512 class the prewarm filled.
  auto a = PoolGet<float>(300);
  auto b = PoolGet<float>(400);
  auto c = PoolGet<float>(500);
  EXPECT_EQ(AllocCount(), before)
      << "acquires from a prewarmed class must not touch the heap";
  PoolPut(std::move(a));
  PoolPut(std::move(b));
  PoolPut(std::move(c));
}

TEST(BufferPoolTest, PrewarmedLargeClassIsVisibleToOtherThreads) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  // 2^16 floats = 256 KB: comfortably shared-first. Prewarming it from
  // this thread must land the buffers on the global list, where a serving
  // thread that never prewarmed anything can claim them.
  constexpr std::size_t kLarge = std::size_t{1} << 16;
  PoolPrewarm<float>(kLarge, 2);
  bool hit = false;
  std::thread worker([&] {
    const auto before = AllocCount();
    auto v = PoolGet<float>(kLarge);
    hit = AllocCount() == before;
    PoolPut(std::move(v));
  });
  worker.join();
  EXPECT_TRUE(hit) << "a prewarmed shared-first buffer must serve another "
                      "thread's first acquire";
}

TEST(BufferPoolTest, LargeClassReleasesGoSharedFirst) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  DrainPools();
  constexpr std::size_t kLarge = std::size_t{1} << 16;
  const float* storage = nullptr;
  // The releasing thread must still be alive when the main thread
  // acquires: thread exit flushes local caches to the global list anyway,
  // which would mask a broken shared-first route. No explicit flush, and
  // the thread parks until the buffer has been claimed.
  std::promise<void> released;
  std::promise<void> claimed;
  std::thread worker([&] {
    auto v = PoolGet<float>(kLarge);
    storage = v.data();
    PoolPut(std::move(v));
    released.set_value();
    claimed.get_future().wait();
  });
  released.get_future().wait();
  auto v = PoolGet<float>(kLarge);
  EXPECT_EQ(v.data(), storage)
      << "large-class puts must bypass the releasing thread's local cache";
  PoolPut(std::move(v));
  claimed.set_value();
  worker.join();
}

TEST(BufferPoolTest, AllocCounterSeesHeapTraffic) {
  const auto count_before = AllocCount();
  const auto bytes_before = AllocBytes();
  auto p = std::make_unique<std::uint64_t[]>(1024);
  p[0] = 1;  // keep the allocation observable
  EXPECT_GT(AllocCount(), count_before);
  EXPECT_GE(AllocBytes(), bytes_before + 1024 * sizeof(std::uint64_t));
}

TEST(BufferPoolTest, SteadyStateGetPutCycleIsAllocFree) {
  if (!PoolingEnabled()) GTEST_SKIP() << "FLUID_POOL=0";
  // Warm the class (and the cache's slot array) once...
  PoolPut(PoolGet<float>(300));
  // ...then the steady-state cycle must never touch the heap.
  const auto before = AllocCount();
  for (int i = 0; i < 100; ++i) {
    auto v = PoolGet<float>(300);
    PoolPut(std::move(v));
  }
  EXPECT_EQ(AllocCount(), before);
}

}  // namespace
}  // namespace fluid::core
