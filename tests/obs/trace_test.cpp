// Tracer: 1-in-N sampling, ring wrap, ScopedSpan RAII, JSON dump.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace fluid::obs {
namespace {

TEST(TracerTest, SamplingIsExactlyOneInN) {
  Tracer t(64);
  // Default (0) disables: no trace ids at all.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.MaybeStartTrace(), 0u);
  t.SetSampleEvery(4);
  int sampled = 0;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t id = t.MaybeStartTrace();
    if (id != 0) {
      ++sampled;
      ids.insert(id);
    }
  }
  EXPECT_EQ(sampled, 100);
  // Ids are unique — mixed, not sequential ticks.
  EXPECT_EQ(ids.size(), 100u);
  t.SetSampleEvery(1);
  EXPECT_NE(t.MaybeStartTrace(), 0u);
}

TEST(TracerTest, RecordIsANoOpForTraceIdZero) {
  Tracer t(64);
  t.Record(0, 1, 0, "ignored", "n0", 10, 5);
  EXPECT_EQ(t.recorded(), 0);
  EXPECT_TRUE(t.Snapshot().empty());
}

TEST(TracerTest, RingWrapsOverTheOldestSpans) {
  Tracer t(8);
  for (int i = 1; i <= 20; ++i) {
    t.Record(static_cast<std::uint64_t>(i), t.NewSpanId(), 0, "s", "n0",
             i * 100, 1);
  }
  EXPECT_EQ(t.recorded(), 20);  // lifetime count keeps growing
  const auto spans = t.Snapshot();
  ASSERT_EQ(spans.size(), 8u);  // only the ring's worth survive
  // The survivors are the 8 most recent records (trace ids 13..20).
  for (const Span& s : spans) {
    EXPECT_GE(s.trace_id, 13u);
    EXPECT_LE(s.trace_id, 20u);
  }
}

TEST(TracerTest, ClearEmptiesTheRingAndTheLifetimeCount) {
  Tracer t(8);
  t.Record(1, 1, 0, "s", "n0", 0, 1);
  t.Clear();
  EXPECT_EQ(t.recorded(), 0);
  EXPECT_TRUE(t.Snapshot().empty());
}

TEST(ScopedSpanTest, RecordsOnDestructionWithParentAndNode) {
  Tracer t(8);
  std::uint64_t span_id = 0;
  {
    ScopedSpan span(t, /*trace_id=*/42, /*parent_id=*/7, "unit.work", "w3");
    span_id = span.id();
    EXPECT_NE(span_id, 0u);
    EXPECT_EQ(t.recorded(), 0);  // nothing until destruction
  }
  const auto spans = t.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, 42u);
  EXPECT_EQ(spans[0].span_id, span_id);
  EXPECT_EQ(spans[0].parent_id, 7u);
  EXPECT_STREQ(spans[0].name, "unit.work");
  EXPECT_STREQ(spans[0].node, "w3");
  EXPECT_GE(spans[0].dur_us, 0);
}

TEST(ScopedSpanTest, InertWhenTraceIdIsZero) {
  Tracer t(8);
  {
    ScopedSpan span(t, /*trace_id=*/0, 0, "unit.work", "w3");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_EQ(t.recorded(), 0);
}

TEST(ScopedSpanTest, LongNodeLabelsAreTruncatedNotOverrun) {
  Tracer t(8);
  {
    ScopedSpan span(t, 1, 0, "s", "a-very-long-node-label-indeed");
  }
  const auto spans = t.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::string(spans[0].node), "a-very-long-nod");  // 15 chars + NUL
}

TEST(TracerTest, DumpJsonGroupsByTraceAndSortsByStart) {
  Tracer t(16);
  // Two traces, spans recorded out of start order.
  t.Record(0xAA, 2, 1, "second", "n0", 200, 10);
  t.Record(0xAA, 1, 0, "first", "n0", 100, 10);
  t.Record(0xBB, 3, 0, "other", "n1", 50, 5);
  const std::string json = t.DumpJson();
  EXPECT_NE(json.find("\"traces\""), std::string::npos);
  const auto first = json.find("\"first\"");
  const auto second = json.find("\"second\"");
  ASSERT_NE(first, std::string::npos) << json;
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);  // sorted by start_us within the trace
  EXPECT_NE(json.find("\"other\""), std::string::npos);
  // Both trace groups present.
  EXPECT_EQ(json.find("\"spans\"") != std::string::npos, true);
}

TEST(TracerTest, GlobalIsASingleton) {
  EXPECT_EQ(&Tracer::Global(), &Tracer::Global());
}

}  // namespace
}  // namespace fluid::obs
