// MetricsRegistry: striped counters/gauges, the log-linear histogram's
// bucket math and quantile accuracy, Prometheus/JSON rendering, Reset.

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace fluid::obs {
namespace {

TEST(CounterTest, SumsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(HistogramTest, BucketMathIsMonotoneAndSelfConsistent) {
  // Every value lands in a bucket whose [lo, hi) bounds contain it, and
  // bucket indices never decrease as values grow.
  std::size_t prev_idx = 0;
  for (std::int64_t u = 0; u < 1 << 20; u = u < 128 ? u + 1 : u + u / 7) {
    const std::size_t idx = Histogram::BucketIndex(u);
    EXPECT_GE(idx, prev_idx) << "u=" << u;
    prev_idx = idx;
    std::int64_t lo = 0, hi = 0;
    Histogram::BucketBounds(idx, lo, hi);
    EXPECT_LE(lo, u) << "u=" << u;
    EXPECT_GT(hi, u) << "u=" << u;
  }
}

TEST(HistogramTest, QuantileErrorIsBoundedByTheSubBucketWidth) {
  // A uniform grid of known values: every quantile of the histogram must
  // sit within the log-linear design error (1/kSub ≈ 3 %) of the exact
  // order statistic.
  Histogram h;
  constexpr int kN = 10000;
  for (int i = 1; i <= kN; ++i) {
    h.Record(static_cast<double>(i) * 0.1);  // 0.1 .. 1000.0 ms
  }
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, kN);
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double exact = q * static_cast<double>(kN) * 0.1;
    const double got = snap.Quantile(q);
    EXPECT_NEAR(got, exact, exact * (1.5 / Histogram::kSub) + 0.01)
        << "q=" << q;
  }
  EXPECT_NEAR(snap.Mean(), (0.1 + 1000.0) / 2.0, 0.5);
  EXPECT_NEAR(snap.max, 1000.0, 0.01);
}

TEST(HistogramTest, HandlesZeroNegativeAndNonFinite) {
  Histogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(std::numeric_limits<double>::infinity());
  h.Record(std::numeric_limits<double>::quiet_NaN());
  // All four recorded (as the zero bucket), none crash or poison state.
  EXPECT_EQ(h.Count(), 4);
  // Interpolation inside the zero bucket stays below one internal unit.
  EXPECT_LT(h.Snap().Quantile(0.5), 1.0 / Histogram::kScale);
}

TEST(HistogramTest, RecordIsThreadSafeAcrossStripes) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h.Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_NEAR(snap.max, kThreads, 0.01);
}

TEST(MetricsRegistryTest, GetReturnsStableReferencesAndFindDoesNotRegister) {
  auto& reg = MetricsRegistry::Global();
  Counter& c1 = reg.GetCounter("obs_test_counter_stable");
  Counter& c2 = reg.GetCounter("obs_test_counter_stable");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(reg.FindHistogram("obs_test_hist_never_registered"), nullptr);
  Histogram& h = reg.GetHistogram("obs_test_hist_registered");
  EXPECT_EQ(reg.FindHistogram("obs_test_hist_registered"), &h);
}

TEST(MetricsRegistryTest, PrometheusTextCarriesEverySeriesKind) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_prom_counter").Add(3);
  reg.GetGauge("obs_test_prom_gauge").Set(2.5);
  reg.GetHistogram("obs_test_prom_hist{class=\"high\"}").Record(10.0);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("obs_test_prom_counter 3"), std::string::npos) << text;
  EXPECT_NE(text.find("obs_test_prom_gauge 2.5"), std::string::npos);
  // Histogram labels merge with the quantile label and the derived
  // _count/_sum series keep the original labels.
  EXPECT_NE(
      text.find("obs_test_prom_hist{class=\"high\",quantile=\"0.5\"}"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("obs_test_prom_hist_count{class=\"high\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_sum{class=\"high\"} 10"),
            std::string::npos);
}

TEST(MetricsRegistryTest, DumpMetricsIsWellFormedJson) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_json_counter").Add(1);
  reg.GetHistogram("obs_test_json_hist").Record(5.0);
  const std::string json = reg.DumpMetrics();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_json_counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test_json_hist\": {\"count\": 1"),
            std::string::npos);
  // Quoted names must be escaped (labels carry embedded quotes).
  reg.GetHistogram("obs_test_json_hist{class=\"x\"}").Record(1.0);
  const std::string json2 = reg.DumpMetrics();
  EXPECT_NE(json2.find("obs_test_json_hist{class=\\\"x\\\"}"),
            std::string::npos)
      << json2;
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsReferencesValid) {
  auto& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("obs_test_reset_counter");
  Histogram& h = reg.GetHistogram("obs_test_reset_hist");
  c.Add(7);
  h.Record(3.0);
  reg.Reset();
  EXPECT_EQ(c.Value(), 0);
  EXPECT_EQ(h.Count(), 0);
  // The references stay live after Reset.
  c.Add(1);
  h.Record(1.0);
  EXPECT_EQ(c.Value(), 1);
  EXPECT_EQ(h.Count(), 1);
}

}  // namespace
}  // namespace fluid::obs
