// QuantDense / QuantConv2d / QuantizeModel tests: int8 layer outputs
// track their fp32 counterparts within the quantization error budget,
// the model converter maps every deployable layer (and folds LeakyReLU),
// and end-to-end logit drift on an extracted subnet stays bounded.

#include "quant/quant_layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "nn/activations.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "slim/fluid_model.h"

namespace fluid::quant {
namespace {

float MaxAbs(const core::Tensor& t) {
  float m = 0.0F;
  for (const float v : t.data()) m = std::max(m, std::fabs(v));
  return m;
}

float MaxAbsDiff(const core::Tensor& a, const core::Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  float m = 0.0F;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a.at(i) - b.at(i)));
  }
  return m;
}

TEST(QuantDenseTest, TracksFp32WithinQuantizationBudget) {
  core::Rng rng(3);
  nn::Dense dense(64, 10, rng, "fc");
  QuantDense qdense(dense);
  core::Tensor x = core::Tensor::UniformRandom({5, 64}, rng, -1.0F, 1.0F);
  core::Tensor ref = dense.Forward(x, false);
  core::Tensor got = qdense.Forward(x, false);
  // Error budget: both operands carry ≤ half-step error; relative to the
  // output magnitude 2 % is loose enough to be robust and tight enough to
  // catch a broken scale.
  EXPECT_LE(MaxAbsDiff(ref, got), 0.02F * std::max(1.0F, MaxAbs(ref)));
}

TEST(QuantDenseTest, LargeBatchMultiThreadMatchesSingleThread) {
  // Regression: the dequantizing scatter runs under ParallelForEach, and a
  // thread_local named inside the lambda would resolve to a pool worker's
  // EMPTY scratch (thread_locals are not captured) — a segfault at any
  // batch large enough for workers to win chunks. Large batch + 4 threads
  // forces worker participation; results must also be identical to the
  // 1-thread run (int8 GEMM + per-row scatter are thread-count-exact).
  core::Rng rng(13);
  nn::Dense dense(64, 10, rng, "fc");
  QuantDense qdense(dense);
  core::Tensor x = core::Tensor::UniformRandom({4096, 64}, rng, -1.0F, 1.0F);
  const int saved = core::NumThreads();
  core::SetNumThreads(1);
  core::Tensor one = qdense.Forward(x, false);
  core::SetNumThreads(4);
  core::Tensor four = qdense.Forward(x, false);
  core::SetNumThreads(saved);
  EXPECT_EQ(MaxAbsDiff(one, four), 0.0F);
}

TEST(QuantConv2dTest, TracksFp32WithinQuantizationBudget) {
  core::Rng rng(4);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng, "conv");
  QuantConv2d qconv(conv);
  core::Tensor x = core::Tensor::UniformRandom({4, 3, 12, 12}, rng, -1, 1);
  core::Tensor ref = conv.Forward(x, false);
  core::Tensor got = qconv.Forward(x, false);
  EXPECT_LE(MaxAbsDiff(ref, got), 0.02F * std::max(1.0F, MaxAbs(ref)));
}

TEST(QuantConv2dTest, FusedLeakyMatchesSeparateActivation) {
  core::Rng rng(5);
  nn::Conv2d conv(2, 6, 3, 1, 1, rng, "conv");
  nn::LeakyReLU leaky(0.01F);
  QuantConv2d fused(conv, 0.01F);
  QuantConv2d plain(conv);
  core::Tensor x = core::Tensor::UniformRandom({2, 2, 9, 9}, rng, -1, 1);
  core::Tensor ref = leaky.Forward(plain.Forward(x, false), false);
  core::Tensor got = fused.Forward(x, false);
  // Same int8 conv result, same activation formula: bitwise equal.
  EXPECT_EQ(ref.data().size(), got.data().size());
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    EXPECT_EQ(ref.at(i), got.at(i)) << "element " << i;
  }
}

TEST(QuantConv2dTest, InferenceOnlyGuards) {
  core::Rng rng(6);
  nn::Conv2d conv(1, 2, 3, 1, 1, rng, "conv");
  QuantConv2d qconv(conv);
  core::Tensor x({1, 1, 5, 5});
  EXPECT_THROW(qconv.Forward(x, /*training=*/true), core::Error);
  EXPECT_THROW(qconv.Backward(x), core::Error);
}

TEST(QuantizeModelTest, MapsEveryDeployableLayerAndFoldsLeaky) {
  core::Rng rng(7);
  nn::Sequential model;
  model.Emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng, "conv1");
  model.Emplace<nn::LeakyReLU>(0.01F);
  model.Emplace<nn::MaxPool2d>(2);
  model.Emplace<nn::Flatten>();
  model.Emplace<nn::Dense>(4 * 14 * 14, 10, rng, "fc");

  nn::Sequential q = QuantizeModel(model);
  // Conv + LeakyReLU fused into one QuantConv2d.
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.layer(0).Kind(), "QuantConv2d");
  EXPECT_EQ(q.layer(1).Kind(), "MaxPool2d");
  EXPECT_EQ(q.layer(2).Kind(), "Flatten");
  EXPECT_EQ(q.layer(3).Kind(), "QuantDense");

  core::Tensor x = core::Tensor::UniformRandom({3, 1, 28, 28}, rng, 0, 1);
  core::Tensor ref = model.Forward(x, false);
  core::Tensor got = q.Forward(x, false);
  EXPECT_LE(MaxAbsDiff(ref, got), 0.05F * std::max(1.0F, MaxAbs(ref)));
}

TEST(QuantizeModelTest, ExtractedSubnetLogitDriftBounded) {
  // The deployment artifact the HA/HT paths actually serve: a subnet
  // extracted from the paper-default fluid store, int8 end to end.
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(21);
  const auto spec = fluid.family().Combined();
  nn::Sequential fp32 = fluid.ExtractSubnet(spec);
  nn::Sequential int8 = fluid.ExtractSubnetQuantized(spec);

  core::Rng rng(22);
  core::Tensor x = core::Tensor::UniformRandom({8, 1, 28, 28}, rng, 0, 1);
  core::Tensor ref = fp32.Forward(x, false);
  core::Tensor got = int8.Forward(x, false);
  // Three quantized convs + the head compound; 5 % of the logit range is
  // the drift budget the accuracy delta criterion implies.
  EXPECT_LE(MaxAbsDiff(ref, got), 0.05F * std::max(1.0F, MaxAbs(ref)));
}

}  // namespace
}  // namespace fluid::quant
