// Quantization primitive tests: scale edge cases (all-zero, single
// outlier, denormals, NaN), round-trip error bounds, per-channel weight
// quantization, and the wire codec (including truncation fuzz).

#include "quant/quantize.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor.h"

namespace fluid::quant {
namespace {

TEST(QuantizeTest, RoundTripErrorBoundedByHalfScale) {
  core::Rng rng(11);
  core::Tensor t = core::Tensor::UniformRandom({4, 7, 5}, rng, -3.0F, 3.0F);
  const QuantizedTensor q = QuantizeTensor(t);
  const core::Tensor back = DequantizeTensor(q);
  ASSERT_EQ(back.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::fabs(back.at(i) - t.at(i)), q.scale * 0.5F + 1e-7F)
        << "element " << i;
  }
}

TEST(QuantizeTest, AllZeroTensorRoundTripsExactly) {
  core::Tensor t({3, 3});
  const QuantizedTensor q = QuantizeTensor(t);
  EXPECT_EQ(q.scale, 1.0F);
  const core::Tensor back = DequantizeTensor(q);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(back.at(i), 0.0F);
  }
}

TEST(QuantizeTest, SingleOutlierDominatesScaleButStaysExactAtTheRail) {
  core::Tensor t({8});
  for (std::int64_t i = 0; i < 7; ++i) t.at(i) = 0.01F;
  t.at(7) = 127.0F;  // outlier = 127 · (absmax/127), lands exactly on 127
  const QuantizedTensor q = QuantizeTensor(t);
  EXPECT_FLOAT_EQ(q.scale, 1.0F);
  EXPECT_EQ(q.data[7], 127);
  // The small values collapse to 0 — that is the per-tensor scheme's
  // documented failure mode an outlier induces, not a bug.
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(q.data[i], 0);
}

TEST(QuantizeTest, DenormalAbsmaxNeverDividesByZero) {
  const float denorm = std::numeric_limits<float>::denorm_min() * 100.0F;
  core::Tensor t({4});
  t.at(0) = denorm;
  t.at(1) = -denorm;
  const QuantizedTensor q = QuantizeTensor(t);
  EXPECT_TRUE(std::isfinite(q.scale));
  EXPECT_GT(q.scale, 0.0F);
  for (const auto v : q.data) {
    EXPECT_GE(v, -127);
    EXPECT_LE(v, 127);
  }
  const core::Tensor back = DequantizeTensor(q);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(back.at(i)));
  }
}

TEST(QuantizeTest, NaNQuantizesToZeroAndInfClampsToRail) {
  core::Tensor t({3});
  t.at(0) = std::numeric_limits<float>::quiet_NaN();
  t.at(1) = std::numeric_limits<float>::infinity();
  t.at(2) = -std::numeric_limits<float>::infinity();
  const QuantizedTensor q = QuantizeTensor(t, /*scale=*/1.0F);
  EXPECT_EQ(q.data[0], 0);
  EXPECT_EQ(q.data[1], 127);
  EXPECT_EQ(q.data[2], -127);
}

TEST(QuantizeTest, SymmetricRange) {
  // -absmax and +absmax map to -127/+127: the -128 code is never used,
  // so negating a tensor negates its quantized form.
  core::Tensor t({2});
  t.at(0) = -2.5F;
  t.at(1) = 2.5F;
  const QuantizedTensor q = QuantizeTensor(t);
  EXPECT_EQ(q.data[0], -127);
  EXPECT_EQ(q.data[1], 127);
}

TEST(QuantizeTest, PerChannelScalesIsolateRowDynamicRange) {
  // Row 0 is tiny, row 1 is huge: per-tensor quantization would zero out
  // row 0 entirely; per-channel keeps both at full 8-bit resolution.
  const std::int64_t cols = 16;
  std::vector<float> w(2 * cols);
  for (std::int64_t c = 0; c < cols; ++c) {
    w[static_cast<std::size_t>(c)] = 0.001F * static_cast<float>(c - 8);
    w[static_cast<std::size_t>(cols + c)] = 50.0F * static_cast<float>(c - 8);
  }
  const QuantizedMatrix q = QuantizeRowsPerChannel(w.data(), 2, cols);
  ASSERT_EQ(q.scales.size(), 2u);
  for (std::int64_t r = 0; r < 2; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const float back =
          q.scales[static_cast<std::size_t>(r)] *
          static_cast<float>(q.data[static_cast<std::size_t>(r * cols + c)]);
      const float ref = w[static_cast<std::size_t>(r * cols + c)];
      EXPECT_NEAR(back, ref, q.scales[static_cast<std::size_t>(r)] * 0.5F);
    }
  }
  // Row 0's small weights survived (nonzero codes exist).
  bool any_nonzero = false;
  for (std::int64_t c = 0; c < cols; ++c) {
    any_nonzero |= q.data[static_cast<std::size_t>(c)] != 0;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(QuantizeTest, WireRoundTrip) {
  core::Rng rng(5);
  core::Tensor t = core::Tensor::UniformRandom({2, 3, 4}, rng, -1.0F, 1.0F);
  const QuantizedTensor q = QuantizeTensor(t);
  core::ByteWriter w;
  q.Encode(w);
  EXPECT_EQ(static_cast<std::int64_t>(w.size()),
            QuantizedWireBytes(q.shape.rank(), q.numel()));
  core::ByteReader r(w.buffer());
  QuantizedTensor back;
  ASSERT_TRUE(QuantizedTensor::Decode(r, back).ok());
  EXPECT_EQ(back.shape, q.shape);
  EXPECT_EQ(back.scale, q.scale);
  EXPECT_EQ(back.data, q.data);
}

TEST(QuantizeTest, WireDecodeNeverThrowsOnTruncationOrGarbage) {
  core::Rng rng(6);
  core::Tensor t = core::Tensor::UniformRandom({3, 5}, rng, -1.0F, 1.0F);
  const QuantizedTensor q = QuantizeTensor(t);
  core::ByteWriter w;
  q.Encode(w);
  const auto& bytes = w.buffer();
  // Every truncation point must fail as Status, not throw or over-read.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    core::ByteReader r(std::span<const std::uint8_t>(bytes.data(), cut));
    QuantizedTensor out;
    EXPECT_FALSE(QuantizedTensor::Decode(r, out).ok()) << "cut=" << cut;
  }
  // Corrupt every byte in turn; decode must return (ok or error), never
  // throw. A flipped dim/length that still parses is fine — the caller
  // validates semantics — but implausible scales/sizes must be caught.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0xFF;
    core::ByteReader r(bad);
    QuantizedTensor out;
    EXPECT_NO_THROW({ (void)QuantizedTensor::Decode(r, out); }) << "i=" << i;
  }
}

}  // namespace
}  // namespace fluid::quant
