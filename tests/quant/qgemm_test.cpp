// int8 GEMM tests: exact agreement with a naive int32 reference over a
// shape grid, exact agreement across SIMD tiers (integer accumulation has
// no rounding, so this is equality, not tolerance), thread-count
// invariance, and saturation inputs.

#include "core/qgemm.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/rng.h"
#include "core/simd/gemm_kernel.h"
#include "core/simd/qgemm_kernel.h"

namespace fluid::core {
namespace {

std::vector<std::int8_t> RandomInt8(Rng& rng, std::int64_t n) {
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<std::int8_t>(
        static_cast<std::int64_t>(rng.UniformInt(255)) - 127);
  }
  return v;
}

std::vector<std::int32_t> NaiveQGemm(std::int64_t m, std::int64_t n,
                                     std::int64_t k,
                                     const std::vector<std::int8_t>& a,
                                     const std::vector<std::int8_t>& b) {
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      const std::int32_t av = a[static_cast<std::size_t>(i * k + p)];
      for (std::int64_t j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(i * n + j)] +=
            av * b[static_cast<std::size_t>(p * n + j)];
      }
    }
  }
  return c;
}

// Pins the int8 kernel directly (not via the fp32 tier): the dispatch
// upgrade maps fp32 "avx512" to int8 "avx512vnni" on VNNI hosts, so tier
// coverage of the shadowed plain-"avx512" kernel needs the direct pin.
class QGemmTierTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const simd::QGemmKernel* k = simd::QGemmKernelByName(GetParam());
    ASSERT_NE(k, nullptr);
    if (!k->supported()) {
      GTEST_SKIP() << GetParam() << " not supported on this host";
    }
    simd::SetQGemmKernelForTesting(k);
    ASSERT_STREQ(simd::ActiveQGemmKernel().name, GetParam());
  }
  void TearDown() override { simd::SetQGemmKernelForTesting(nullptr); }
};

TEST_P(QGemmTierTest, MatchesNaiveReferenceOverShapeGrid) {
  Rng rng(42);
  // Ragged shapes straddle every blocking boundary: the register tile
  // (6/16/32), KC=256 (k=300 crosses it), and oddball primes.
  const std::int64_t shapes[][3] = {
      {1, 1, 1},   {1, 16, 7},   {3, 5, 2},    {6, 16, 16}, {7, 17, 19},
      {13, 33, 9}, {16, 144, 9}, {10, 50, 300}, {48, 64, 31}, {65, 97, 13},
  };
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    const auto a = RandomInt8(rng, m * k);
    const auto b = RandomInt8(rng, k * n);
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), -777);
    QGemmInt8(m, n, k, a.data(), k, b.data(), n, c.data(), n);
    const auto ref = NaiveQGemm(m, n, k, a, b);
    ASSERT_EQ(c, ref) << "shape " << m << "x" << n << "x" << k << " tier "
                      << GetParam();
  }
}

TEST_P(QGemmTierTest, SaturationInputsAccumulateExactly) {
  // All-rail inputs maximise every product (127·127); k=512 spans two KC
  // blocks. The exact expected value catches silent int16 overflow.
  const std::int64_t m = 7, n = 18, k = 512;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k), 127);
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n), -127);
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), 0);
  QGemmInt8(m, n, k, a.data(), k, b.data(), n, c.data(), n);
  for (const auto v : c) {
    EXPECT_EQ(v, -127 * 127 * k);
  }
}

TEST_P(QGemmTierTest, ThreadCountDoesNotChangeResults) {
  Rng rng(7);
  const std::int64_t m = 33, n = 70, k = 90;
  const auto a = RandomInt8(rng, m * k);
  const auto b = RandomInt8(rng, k * n);
  std::vector<std::int32_t> c1(static_cast<std::size_t>(m * n));
  std::vector<std::int32_t> c4(static_cast<std::size_t>(m * n));
  const int saved = NumThreads();
  SetNumThreads(1);
  QGemmInt8(m, n, k, a.data(), k, b.data(), n, c1.data(), n);
  SetNumThreads(4);
  QGemmInt8(m, n, k, a.data(), k, b.data(), n, c4.data(), n);
  SetNumThreads(saved);
  EXPECT_EQ(c1, c4);
}

INSTANTIATE_TEST_SUITE_P(AllTiers, QGemmTierTest,
                         ::testing::Values("scalar", "avx2", "avx512",
                                           "avx512vnni"),
                         [](const auto& info) { return std::string(info.param); });

TEST(QGemmDispatchTest, FollowsActiveFp32Tier) {
  const simd::QGemmKernel* vnni = simd::QGemmKernelByName("avx512vnni");
  for (const simd::GemmKernel* k : simd::AllGemmKernels()) {
    if (!k->supported()) continue;
    simd::SetGemmKernelForTesting(k);
    // The avx512 tier upgrades to vnni when the CPU has it; every other
    // tier pairs with the int8 kernel of the same name.
    const bool upgrades = std::string_view(k->name) == "avx512" &&
                          vnni != nullptr && vnni->supported();
    EXPECT_STREQ(simd::ActiveQGemmKernel().name,
                 upgrades ? "avx512vnni" : k->name);
  }
  simd::SetGemmKernelForTesting(nullptr);
}

TEST(QGemmDispatchTest, EveryTierPairsAnInt8Kernel) {
  for (const simd::GemmKernel* k : simd::AllGemmKernels()) {
    EXPECT_NE(simd::QGemmKernelByName(k->name), nullptr) << k->name;
  }
}

TEST(QGemmDispatchTest, TestOverridePinsExactKernel) {
  for (const simd::QGemmKernel* k : simd::AllQGemmKernels()) {
    simd::SetQGemmKernelForTesting(k);
    EXPECT_EQ(&simd::ActiveQGemmKernel(), k);
  }
  simd::SetQGemmKernelForTesting(nullptr);
}

TEST(QGemmTest, ZeroKZeroesC) {
  std::vector<std::int32_t> c(6, 1234);
  QGemmInt8(2, 3, 0, nullptr, 0, nullptr, 0, c.data(), 3);
  for (const auto v : c) EXPECT_EQ(v, 0);
}

}  // namespace
}  // namespace fluid::core
