// Wire v5 (quantized *input* shards) and the per-deploy int8_input_wire
// negotiation: codec round-trip + fuzz, scatter-encode byte equivalence,
// blueprint flag compatibility, quantized HT fan-out drift + wire-byte
// economy, and v5 / v2 peer interop including mid-stream failover.
// Mirrors quant_wire_test.cpp (wire v3) one version up.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "dist/master.h"
#include "dist/message.h"
#include "dist/worker.h"
#include "nn/checkpoint.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

TEST(InputQuantWireTest, InputQuantFrameRoundTripsAsVersion5) {
  core::Rng rng(1);
  core::Tensor x = core::Tensor::UniformRandom({4, 1, 28, 28}, rng, 0, 1);
  Message msg = Message::WithQuantInput(MsgType::kInfer, 42, "upper50",
                                        quant::QuantizeTensor(x));
  EXPECT_EQ(msg.batch, 4);
  EXPECT_TRUE(msg.input_quant);
  EXPECT_FALSE(msg.has_slo());
  const auto bytes = EncodeMessage(msg);
  // Body starts after [magic][len]; byte 0 of the body is the version.
  ASSERT_GT(bytes.size(), 9u);
  EXPECT_EQ(bytes[8], 5) << "quantized input shards must be wire v5";

  Message back;
  ASSERT_TRUE(DecodeMessage(bytes, back).ok());
  EXPECT_EQ(back.type, MsgType::kInfer);
  EXPECT_EQ(back.seq, 42);
  EXPECT_EQ(back.batch, 4);
  EXPECT_EQ(back.tag, "upper50");
  EXPECT_FALSE(back.has_payload());
  ASSERT_TRUE(back.has_qpayload());
  EXPECT_TRUE(back.input_quant);
  EXPECT_FALSE(back.has_slo()) << "v5 without an SLO decodes slo_ms = -1";
  EXPECT_EQ(back.qpayload.shape, msg.qpayload.shape);
  EXPECT_EQ(back.qpayload.scale, msg.qpayload.scale);
  EXPECT_EQ(back.qpayload.data, msg.qpayload.data);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
}

TEST(InputQuantWireTest, V5CarriesTheSloBlockWhenSet) {
  core::Rng rng(2);
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 28, 28}, rng, 0, 1);
  Message msg = Message::WithQuantInput(MsgType::kInfer, 7, "upper50",
                                        quant::QuantizeTensor(x));
  msg.SetSlo(1, 250);
  const auto bytes = EncodeMessage(msg);
  ASSERT_GT(bytes.size(), 9u);
  EXPECT_EQ(bytes[8], 5);

  Message back;
  ASSERT_TRUE(DecodeMessage(bytes, back).ok());
  EXPECT_TRUE(back.input_quant);
  ASSERT_TRUE(back.has_slo());
  EXPECT_EQ(back.priority, 1);
  EXPECT_EQ(back.slo_ms, 250);
}

TEST(InputQuantWireTest, FramesWithoutTheMarkerKeepTheirOldVersions) {
  core::Rng rng(3);
  core::Tensor x = core::Tensor::UniformRandom({2, 3}, rng, -1, 1);

  // The whole negotiation matrix below v5 stays byte-stable: fp32 → v2,
  // quantized cut activations → v3, SLO block → v4. fp32-only peers must
  // never see a version bump from this PR.
  const auto v2 =
      EncodeMessage(Message::WithBatch(MsgType::kInfer, 1, "m", x.Clone()));
  ASSERT_GT(v2.size(), 9u);
  EXPECT_EQ(v2[8], 2);

  const auto v3 = EncodeMessage(Message::WithQuantBatch(
      MsgType::kInfer, 1, "m", quant::QuantizeTensor(x)));
  ASSERT_GT(v3.size(), 9u);
  EXPECT_EQ(v3[8], 3);

  Message slo = Message::WithBatch(MsgType::kInfer, 1, "m", x.Clone());
  slo.SetSlo(0, 100);
  const auto v4 = EncodeMessage(slo);
  ASSERT_GT(v4.size(), 9u);
  EXPECT_EQ(v4[8], 4);
}

TEST(InputQuantWireTest, ScatterEncodeReassemblesByteIdenticalAcrossVersions) {
  core::Rng rng(4);
  core::Tensor x = core::Tensor::UniformRandom({3, 1, 28, 28}, rng, 0, 1);
  Message v4 = Message::WithBatch(MsgType::kInfer, 2, "fp", x.Clone());
  v4.SetSlo(2, 40);
  const Message msgs[] = {
      Message::HeaderOnly(MsgType::kHeartbeat, 1, "hb"),
      std::move(v4),
      Message::WithQuantBatch(MsgType::kInfer, 3, "cut",
                              quant::QuantizeTensor(x)),
      Message::WithQuantInput(MsgType::kInfer, 4, "in",
                              quant::QuantizeTensor(x)),
  };
  // All four frames scatter into ONE shared scaffold — the batched-send
  // layout — and the reassembled bytes must equal each frame's plain
  // EncodeMessage. This is the proof that vectored sends are invisible on
  // the wire (fp32-only deployments stay byte-identical).
  core::ByteWriter scaffold;
  std::vector<WireSegment> segments;
  std::vector<std::size_t> frame_sizes;
  for (const Message& m : msgs) {
    const auto n = EncodeMessageScatter(m, scaffold, segments);
    EXPECT_EQ(n, EncodedSize(m));
    frame_sizes.push_back(static_cast<std::size_t>(n));
  }
  std::vector<std::uint8_t> reassembled;
  for (const WireSegment& seg : segments) {
    const std::uint8_t* src =
        seg.bulk != nullptr ? seg.bulk : scaffold.buffer().data() + seg.scaffold_off;
    reassembled.insert(reassembled.end(), src, src + seg.size);
  }
  std::size_t off = 0;
  for (std::size_t i = 0; i < std::size(msgs); ++i) {
    const auto want = EncodeMessage(msgs[i]);
    ASSERT_EQ(want.size(), frame_sizes[i]);
    ASSERT_LE(off + want.size(), reassembled.size());
    EXPECT_TRUE(std::equal(want.begin(), want.end(), reassembled.begin() + off))
        << "frame " << i << " drifted between scatter and plain encode";
    off += want.size();
  }
  EXPECT_EQ(off, reassembled.size());
}

TEST(InputQuantWireTest, V5DecodeFuzzNeverThrows) {
  core::Rng rng(5);
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 14, 14}, rng, 0, 1);
  Message msg = Message::WithQuantInput(MsgType::kInfer, 9, "upper50",
                                        quant::QuantizeTensor(x));
  msg.SetSlo(0, 75);
  const auto bytes = EncodeMessage(msg);
  // Truncation at every byte boundary fails as Status, never throws.
  for (std::size_t cut_at = 0; cut_at < bytes.size(); ++cut_at) {
    Message out;
    EXPECT_NO_THROW({
      const auto st = DecodeMessage(
          std::span<const std::uint8_t>(bytes.data(), cut_at), out);
      EXPECT_FALSE(st.ok()) << "cut=" << cut_at;
    });
  }
  // Single-byte corruption anywhere must decode or fail cleanly.
  for (std::size_t i = 8; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0xA5;
    Message out;
    EXPECT_NO_THROW({ (void)DecodeMessage(bad, out); }) << "i=" << i;
  }
}

TEST(InputQuantWireTest, MarkerWithoutQuantPayloadIsRejected) {
  // A hand-rolled v5 frame whose marker is set but whose body carries no
  // qtensor is malformed — the decoder must refuse it, not fabricate an
  // empty input shard.
  core::ByteWriter body;
  body.WriteU8(5);                       // version
  body.WriteU8(2);                       // kInfer
  body.WriteI64(1);                      // seq
  body.WriteI64(0);                      // batch
  body.WriteString("t");                 // tag
  body.WriteU8(0);                       // has_tensor
  body.WriteU8(0);                       // has_qtensor — nothing follows
  body.WriteU8(0);                       // priority
  body.WriteI64(-1);                     // slo_ms: "no SLO"
  body.WriteU8(1);                       // input_quant, with no qpayload
  core::ByteWriter frame;
  frame.WriteU32(kFrameMagic);
  frame.WriteU32(static_cast<std::uint32_t>(body.buffer().size()));
  std::vector<std::uint8_t> bytes = frame.buffer();
  bytes.insert(bytes.end(), body.buffer().begin(), body.buffer().end());
  Message out;
  EXPECT_NO_THROW({
    const auto st = DecodeMessage(bytes, out);
    EXPECT_FALSE(st.ok()) << "marker without qpayload must not decode";
    EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
  });
}

TEST(InputQuantWireTest, BlueprintInputWireFlagRoundTripsAndStaysV1WhenOff) {
  slim::FluidNetConfig cfg;
  auto bp = ModelBlueprint::Standalone(cfg, 16);
  {
    core::ByteWriter w;
    bp.Encode(w);
    EXPECT_EQ(w.buffer()[0], 1) << "quant-free blueprints must stay v1";
    core::ByteReader r(w.buffer());
    ModelBlueprint out;
    ASSERT_TRUE(ModelBlueprint::Decode(r, out).ok());
    EXPECT_FALSE(out.quant.any());
  }
  bp.quant.int8_input_wire = true;
  {
    core::ByteWriter w;
    bp.Encode(w);
    EXPECT_EQ(w.buffer()[0], 2);
    core::ByteReader r(w.buffer());
    ModelBlueprint out;
    ASSERT_TRUE(ModelBlueprint::Decode(r, out).ok());
    EXPECT_TRUE(out.quant.int8_input_wire);
    EXPECT_FALSE(out.quant.int8_wire);
    EXPECT_FALSE(out.quant.int8_compute);
    EXPECT_TRUE(out.quant.any());
  }
}

// One master + two workers, both hosting the worker-resident standalone
// slice — the HighThroughput fan-out topology. Which worker negotiates
// int8 input shards (wire v5) is per-test.
class InputQuantClusterTest : public ::testing::Test {
 protected:
  InputQuantClusterTest()
      : fluid_(slim::FluidModel::PaperDefault(7)), master_(cfg_), rng_(99) {
    for (int i = 0; i < 2; ++i) {
      auto [master_end, worker_end] = MakeInMemoryPair();
      workers_.push_back(std::make_unique<WorkerNode>(
          "w" + std::to_string(i), cfg_, std::move(worker_end)));
      workers_.back()->Start();
      master_.AttachWorker(std::move(master_end));
    }
  }

  // Deploy upper50 to both workers; `quant[w]` selects which of them
  // negotiates int8_input_wire. No master-resident slice: every shard of
  // the fan-out goes remote, so the fp32 reference is the plain upper50
  // forward of the whole batch.
  void DeployFanOut(bool w0_quant, bool w1_quant) {
    const auto& family = fluid_.family();
    const bool quant[2] = {w0_quant, w1_quant};
    for (std::size_t w = 0; w < 2; ++w) {
      nn::Sequential upper = fluid_.ExtractSubnet(family.WorkerResident());
      auto bp = ModelBlueprint::Standalone(
          cfg_, family.WorkerResident().range.width());
      bp.quant.int8_input_wire = quant[w];
      ASSERT_TRUE(master_
                      .DeployToWorker("upper50", bp, nn::ExtractState(upper),
                                      2000ms, w)
                      .ok());
    }
    Plan plan;
    plan.worker_standalone = "upper50";
    master_.SetPlan(plan);
    master_.SetMode(sim::Mode::kHighThroughput);
  }

  core::Tensor Input(std::int64_t n = 1) {
    return core::Tensor::UniformRandom({n, 1, 28, 28}, rng_, 0, 1);
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  MasterNode master_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  core::Rng rng_;
};

TEST_F(InputQuantClusterTest, QuantizedFanOutTracksFp32WithinDriftBound) {
  DeployFanOut(/*w0_quant=*/true, /*w1_quant=*/true);
  const core::Tensor x = Input(8);
  nn::Sequential upper = fluid_.ExtractSubnet(fluid_.family().WorkerResident());
  const core::Tensor want = upper.Forward(x, false);

  auto reply = master_.Infer(x, 5000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  // absmax-int8 input quantization bounds the drift: inputs live in
  // [0, 1], so one half-step of the input scale propagated through the
  // slice — 5 % of the logit range catches a wrong scale or byte order
  // immediately while tolerating legitimate rounding.
  float logit_range = 0.0F;
  for (const float v : want.data()) {
    logit_range = std::max(logit_range, std::fabs(v));
  }
  EXPECT_LE(core::MaxAbsDiff(reply->logits, want),
            0.05F * std::max(1.0F, logit_range));

  // Prove the negotiation really changed the wire: the master shipped v5
  // input shards and both workers decoded them as such.
  EXPECT_GT(master_.stats().quant_input_frames, 0);
  EXPECT_GT(workers_[0]->input_quant_frames(), 0);
  EXPECT_GT(workers_[1]->input_quant_frames(), 0);
}

TEST_F(InputQuantClusterTest, V5AndV2PeersShareOneFanOut) {
  DeployFanOut(/*w0_quant=*/true, /*w1_quant=*/false);
  for (int i = 0; i < 4; ++i) {
    auto reply = master_.Infer(Input(8), 5000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  // Worker 0 negotiated v5 and saw only quantized input shards; worker 1
  // never negotiated and saw only fp32 v2 frames — in the same batches.
  EXPECT_GT(workers_[0]->input_quant_frames(), 0);
  EXPECT_GT(workers_[1]->samples_served(), 0);
  EXPECT_EQ(workers_[1]->input_quant_frames(), 0);
  EXPECT_EQ(workers_[1]->quant_frames(), 0);
  EXPECT_EQ(master_.stats().quant_input_frames,
            workers_[0]->input_quant_frames());
}

TEST_F(InputQuantClusterTest, FailoverFromV5WorkerLandsOnFp32Worker) {
  DeployFanOut(/*w0_quant=*/true, /*w1_quant=*/false);
  auto reply = master_.Infer(Input(4), 5000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GT(workers_[0]->input_quant_frames(), 0);

  // The v5 worker dies mid-stream; the same cluster keeps serving through
  // the fp32 peer, which must never see a v5 frame.
  workers_[0]->Crash();
  for (int i = 0; i < 4; ++i) {
    auto r2 = master_.Infer(Input(2), 5000ms);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  }
  EXPECT_GT(workers_[1]->samples_served(), 0);
  EXPECT_EQ(workers_[1]->input_quant_frames(), 0);
  EXPECT_EQ(workers_[1]->quant_frames(), 0);
  EXPECT_GT(master_.stats().failovers, 0);
}

TEST_F(InputQuantClusterTest, WireCountersAttributeTheFanOutTraffic) {
  DeployFanOut(/*w0_quant=*/true, /*w1_quant=*/true);
  const WireStats before = master_.wire_stats();
  for (int i = 0; i < 4; ++i) {
    auto reply = master_.Infer(Input(8), 5000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  const WireStats after = master_.wire_stats();
  EXPECT_GT(after.bytes_sent, before.bytes_sent);
  EXPECT_GT(after.frames_sent, before.frames_sent);
  // Every infer round-trips: the master also drained the reply frames.
  EXPECT_GT(after.frames_recv, before.frames_recv);
  // Worker-side counters see the same traffic from the other end.
  EXPECT_GT(workers_[0]->wire_stats().bytes_recv, 0);
  EXPECT_GT(workers_[1]->wire_stats().bytes_recv, 0);
  EXPECT_GE(after.bytes_sent, workers_[0]->wire_stats().bytes_recv);
}

TEST_F(InputQuantClusterTest, InputQuantShipsRoughlyFourTimesFewerBytes) {
  DeployFanOut(/*w0_quant=*/true, /*w1_quant=*/true);

  // A second identical cluster without the negotiation, as the fp32
  // yardstick. Same batch size, same request count; only the wire format
  // of the input shards differs.
  slim::FluidModel fp32_fluid(slim::FluidModel::PaperDefault(7));
  MasterNode fp32_master(cfg_);
  std::vector<std::unique_ptr<WorkerNode>> fp32_workers;
  for (int i = 0; i < 2; ++i) {
    auto [master_end, worker_end] = MakeInMemoryPair();
    fp32_workers.push_back(std::make_unique<WorkerNode>(
        "f" + std::to_string(i), cfg_, std::move(worker_end)));
    fp32_workers.back()->Start();
    fp32_master.AttachWorker(std::move(master_end));
  }
  const auto& family = fp32_fluid.family();
  for (std::size_t w = 0; w < 2; ++w) {
    nn::Sequential upper = fp32_fluid.ExtractSubnet(family.WorkerResident());
    ASSERT_TRUE(fp32_master
                    .DeployToWorker("upper50",
                                    ModelBlueprint::Standalone(
                                        cfg_, family.WorkerResident().range.width()),
                                    nn::ExtractState(upper), 2000ms, w)
                    .ok());
  }
  Plan plan;
  plan.worker_standalone = "upper50";
  fp32_master.SetPlan(plan);
  fp32_master.SetMode(sim::Mode::kHighThroughput);

  auto shipped = [](MasterNode& m, core::Tensor x) {
    const std::int64_t before = m.wire_stats().bytes_sent;
    auto reply = m.Infer(x, 5000ms);
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    return m.wire_stats().bytes_sent - before;
  };
  std::int64_t quant_bytes = 0;
  std::int64_t fp32_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    core::Tensor x = Input(8);
    quant_bytes += shipped(master_, x.Clone());
    fp32_bytes += shipped(fp32_master, std::move(x));
  }
  // 784 floats vs 784 bytes per sample plus small fixed framing: the
  // fan-out's wire cost must shrink close to 4×.
  EXPECT_GT(static_cast<double>(fp32_bytes) / static_cast<double>(quant_bytes),
            3.0);
  for (auto& w : fp32_workers) w->Stop();
}

}  // namespace
}  // namespace fluid::dist
