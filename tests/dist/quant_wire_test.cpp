// Wire v3 (quantized cut activations) and the per-deploy quant
// negotiation: codec round-trip + fuzz, blueprint flag compatibility,
// quantized-HA end-to-end drift, v3-quant / v2-fp32 peer interop in one
// cluster, and the int8-compute deploy path.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "dist/master.h"
#include "dist/message.h"
#include "dist/worker.h"
#include "nn/checkpoint.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

TEST(QuantWireTest, QuantFrameRoundTripsAsVersion3) {
  core::Rng rng(1);
  core::Tensor cut = core::Tensor::UniformRandom({4, 16, 7, 7}, rng, -2, 2);
  Message msg = Message::WithQuantBatch(MsgType::kInfer, 42, "back",
                                        quant::QuantizeTensor(cut));
  EXPECT_EQ(msg.batch, 4);
  const auto bytes = EncodeMessage(msg);
  // Body starts after [magic][len]; byte 0 of the body is the version.
  ASSERT_GT(bytes.size(), 9u);
  EXPECT_EQ(bytes[8], 3) << "quantized frames must be wire v3";

  Message back;
  ASSERT_TRUE(DecodeMessage(bytes, back).ok());
  EXPECT_EQ(back.type, MsgType::kInfer);
  EXPECT_EQ(back.seq, 42);
  EXPECT_EQ(back.batch, 4);
  EXPECT_EQ(back.tag, "back");
  EXPECT_FALSE(back.has_payload());
  ASSERT_TRUE(back.has_qpayload());
  EXPECT_EQ(back.qpayload.shape, msg.qpayload.shape);
  EXPECT_EQ(back.qpayload.scale, msg.qpayload.scale);
  EXPECT_EQ(back.qpayload.data, msg.qpayload.data);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
}

TEST(QuantWireTest, Fp32FramesStayVersion2ByteIdentical) {
  core::Rng rng(2);
  core::Tensor x = core::Tensor::UniformRandom({2, 3}, rng, -1, 1);
  const auto bytes =
      EncodeMessage(Message::WithBatch(MsgType::kInfer, 7, "m", x.Clone()));
  ASSERT_GT(bytes.size(), 9u);
  EXPECT_EQ(bytes[8], 2) << "frames without a quant payload must stay v2";
}

TEST(QuantWireTest, QuantFrameIsRoughlyFourTimesSmaller) {
  core::Rng rng(3);
  core::Tensor cut = core::Tensor::UniformRandom({8, 16, 14, 14}, rng, -1, 1);
  const auto fp32 = EncodedSize(
      Message::WithBatch(MsgType::kInfer, 1, "back", cut.Clone()));
  const auto int8 = EncodedSize(Message::WithQuantBatch(
      MsgType::kInfer, 1, "back", quant::QuantizeTensor(cut)));
  EXPECT_GT(static_cast<double>(fp32) / static_cast<double>(int8), 3.8);
}

TEST(QuantWireTest, V3DecodeFuzzNeverThrows) {
  core::Rng rng(4);
  core::Tensor cut = core::Tensor::UniformRandom({2, 4, 5, 5}, rng, -1, 1);
  const auto bytes = EncodeMessage(Message::WithQuantBatch(
      MsgType::kInfer, 9, "back", quant::QuantizeTensor(cut)));
  // Truncation at every byte boundary fails as Status, never throws.
  for (std::size_t cut_at = 0; cut_at < bytes.size(); ++cut_at) {
    Message out;
    EXPECT_NO_THROW({
      const auto st = DecodeMessage(
          std::span<const std::uint8_t>(bytes.data(), cut_at), out);
      EXPECT_FALSE(st.ok()) << "cut=" << cut_at;
    });
  }
  // Single-byte corruption anywhere must decode or fail cleanly.
  for (std::size_t i = 8; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0xA5;
    Message out;
    EXPECT_NO_THROW({ (void)DecodeMessage(bad, out); }) << "i=" << i;
  }
}

TEST(QuantWireTest, BlueprintQuantFlagsRoundTripAndStayV1WhenOff) {
  slim::FluidNetConfig cfg;
  auto bp = ModelBlueprint::PipelineBack(cfg, 16, 2);
  {
    core::ByteWriter w;
    bp.Encode(w);
    EXPECT_EQ(w.buffer()[0], 1) << "quant-free blueprints must stay v1";
    core::ByteReader r(w.buffer());
    ModelBlueprint out;
    ASSERT_TRUE(ModelBlueprint::Decode(r, out).ok());
    EXPECT_FALSE(out.quant.any());
  }
  bp.quant.int8_wire = true;
  bp.quant.int8_compute = true;
  {
    core::ByteWriter w;
    bp.Encode(w);
    EXPECT_EQ(w.buffer()[0], 2);
    core::ByteReader r(w.buffer());
    ModelBlueprint out;
    ASSERT_TRUE(ModelBlueprint::Decode(r, out).ok());
    EXPECT_TRUE(out.quant.int8_wire);
    EXPECT_TRUE(out.quant.int8_compute);
  }
}

// One master + two workers: worker 0 hosts the quantized (v3) pipeline
// back half, worker 1 a plain fp32 (v2) standalone slice.
class QuantClusterTest : public ::testing::Test {
 protected:
  QuantClusterTest()
      : fluid_(slim::FluidModel::PaperDefault(7)), master_(cfg_), rng_(99) {
    for (int i = 0; i < 2; ++i) {
      auto [master_end, worker_end] = MakeInMemoryPair();
      workers_.push_back(std::make_unique<WorkerNode>(
          "w" + std::to_string(i), cfg_, std::move(worker_end)));
      workers_.back()->Start();
      master_.AttachWorker(std::move(master_end));
    }
  }

  void DeployQuantPlan(bool back_int8_compute = false) {
    const auto& family = fluid_.family();
    master_.DeployLocal("lower50",
                        fluid_.ExtractSubnet(family.MasterResident()));
    nn::Sequential combined = fluid_.ExtractSubnet(family.Combined());
    auto halves = train::SplitConvNet(cfg_, family.max_width(), combined, 2);
    master_.DeployLocal("front", std::move(halves.front));

    auto back_bp = ModelBlueprint::PipelineBack(cfg_, family.max_width(), 2);
    back_bp.quant.int8_wire = true;  // worker 0 negotiates v3 cut frames
    back_bp.quant.int8_compute = back_int8_compute;
    ASSERT_TRUE(master_
                    .DeployToWorker("back", back_bp,
                                    nn::ExtractState(halves.back), 2000ms, 0)
                    .ok());

    nn::Sequential upper = fluid_.ExtractSubnet(family.WorkerResident());
    ASSERT_TRUE(master_
                    .DeployToWorker(
                        "upper50",
                        ModelBlueprint::Standalone(
                            cfg_, family.WorkerResident().range.width()),
                        nn::ExtractState(upper), 2000ms, 1)
                    .ok());
    Plan plan;
    plan.master_standalone = "lower50";
    plan.worker_standalone = "upper50";
    plan.pipeline_front = "front";
    plan.pipeline_back = "back";
    plan.back_worker = 0;
    master_.SetPlan(plan);
  }

  core::Tensor Input(std::int64_t n = 1) {
    return core::Tensor::UniformRandom({n, 1, 28, 28}, rng_, 0, 1);
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  MasterNode master_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  core::Rng rng_;
};

TEST_F(QuantClusterTest, QuantizedHaTracksFp32HaWithinDriftBound) {
  DeployQuantPlan();
  master_.SetMode(sim::Mode::kHighAccuracy);
  const core::Tensor x = Input(8);
  nn::Sequential combined = fluid_.ExtractSubnet(fluid_.family().Combined());
  const core::Tensor want = combined.Forward(x, false);

  auto reply = master_.Infer(x, 5000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "pipeline:front+back@worker[0]");

  // int8 cut quantization bounds the end-to-end logit drift: one
  // half-step of the cut scale propagated through the (Lipschitz ≤ 1 per
  // unit weight) back half — 5 % of the logit range is generous and
  // still catches a wrong scale or byte order immediately.
  float logit_range = 0.0F;
  for (const float v : want.data()) {
    logit_range = std::max(logit_range, std::fabs(v));
  }
  EXPECT_LE(core::MaxAbsDiff(reply->logits, want),
            0.05F * std::max(1.0F, logit_range));

  // Prove the negotiation really changed the wire: the master shipped v3
  // cut frames and worker 0 decoded them as such.
  EXPECT_GT(master_.stats().quant_cut_frames, 0);
  EXPECT_GT(workers_[0]->quant_frames(), 0);
  EXPECT_EQ(workers_[1]->quant_frames(), 0);
}

TEST_F(QuantClusterTest, V3AndV2PeersInteroperateInOneCluster) {
  DeployQuantPlan();
  master_.SetMode(sim::Mode::kHighAccuracy);

  // Quantized HA pipeline serves through worker 0 (v3 frames)...
  auto reply = master_.Infer(Input(4), 5000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_GT(workers_[0]->quant_frames(), 0);

  // ...then worker 0 dies and the same cluster fails over to the fp32
  // fan-out: worker 1 serves plain v2 frames, never having seen v3.
  workers_[0]->Crash();
  bool saw_w1 = false;
  for (int i = 0; i < 4; ++i) {
    auto r2 = master_.Infer(Input(), 5000ms);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    saw_w1 |= r2->served_by == "worker[1]:upper50";
  }
  EXPECT_TRUE(saw_w1);
  EXPECT_GT(workers_[1]->samples_served(), 0);
  EXPECT_EQ(workers_[1]->quant_frames(), 0);
  EXPECT_GT(master_.stats().failovers, 0);
}

TEST_F(QuantClusterTest, Int8ComputeDeployServesThroughTheQuantLayers) {
  DeployQuantPlan(/*back_int8_compute=*/true);
  master_.SetMode(sim::Mode::kHighAccuracy);
  const core::Tensor x = Input(4);
  nn::Sequential combined = fluid_.ExtractSubnet(fluid_.family().Combined());
  const core::Tensor want = combined.Forward(x, false);

  auto reply = master_.Infer(x, 5000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  float logit_range = 0.0F;
  for (const float v : want.data()) {
    logit_range = std::max(logit_range, std::fabs(v));
  }
  // int8 wire AND int8 weights/activations on the back half: a larger
  // but still small budget.
  EXPECT_LE(core::MaxAbsDiff(reply->logits, want),
            0.08F * std::max(1.0F, logit_range));
  EXPECT_GT(workers_[0]->quant_frames(), 0);
}

}  // namespace
}  // namespace fluid::dist
