#include "dist/serving_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "dist/master.h"
#include "dist/worker.h"
#include "nn/checkpoint.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

core::Tensor Sample(core::Rng& rng, std::int64_t n = 1) {
  return core::Tensor::UniformRandom({n, 1, 28, 28}, rng, 0, 1);
}

// ---------------------------------------------------------------------------
// BatchScheduler unit tests (stub serve callback, no master involved).
// ---------------------------------------------------------------------------

struct GatedServe {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::vector<std::int64_t> batch_sizes;

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }

  BatchScheduler::ServeFn Fn() {
    return [this](std::vector<BatchScheduler::Request>& batch) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return open; });
      std::int64_t samples = 0;
      for (auto& req : batch) samples += req.samples;
      batch_sizes.push_back(samples);
      lock.unlock();
      for (auto& req : batch) {
        InferReply reply;
        reply.logits = core::Tensor({req.samples, 1});
        reply.served_by = "stub";
        req.promise.set_value(std::move(reply));
      }
    };
  }
};

TEST(BatchSchedulerTest, CoalescesQueuedRequestsIntoOneBatch) {
  core::Rng rng(1);
  GatedServe serve;
  BatchOptions opts;
  opts.max_batch = 8;
  opts.max_delay = 5ms;
  BatchScheduler scheduler(opts, serve.Fn());

  // First submit is grabbed alone while the gate holds the drain thread;
  // the next four queue up behind it and must coalesce into ONE batch.
  auto first = scheduler.Submit(Sample(rng), 2000ms);
  std::vector<std::future<core::StatusOr<InferReply>>> rest;
  // Wait until the drain thread has the first request in hand (depth 0).
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  for (int i = 0; i < 4; ++i) rest.push_back(scheduler.Submit(Sample(rng), 2000ms));
  serve.Release();

  ASSERT_TRUE(first.get().ok());
  for (auto& f : rest) ASSERT_TRUE(f.get().ok());

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 5);
  EXPECT_EQ(stats.coalesced_samples, 5);
  ASSERT_EQ(serve.batch_sizes.size(), 2u);
  EXPECT_EQ(serve.batch_sizes[0], 1);
  EXPECT_EQ(serve.batch_sizes[1], 4);
  EXPECT_EQ(stats.max_batch_seen, 4);
  EXPECT_NEAR(stats.avg_batch, 2.5, 1e-9);
  // Occupancy is an EMA (alpha 0.25) seeded on the first batch:
  // 1, then 0.25·4 + 0.75·1 = 1.75 — over max_batch 8.
  EXPECT_NEAR(stats.occupancy, 1.75 / 8.0, 1e-9);
}

TEST(BatchSchedulerTest, BoundedQueueBlocksSubmitUntilSpace) {
  core::Rng rng(2);
  GatedServe serve;
  BatchOptions opts;
  opts.max_batch = 4;
  opts.queue_capacity = 4;
  opts.max_delay = 1ms;
  BatchScheduler scheduler(opts, serve.Fn());

  auto first = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  std::vector<std::future<core::StatusOr<InferReply>>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(scheduler.Submit(Sample(rng), 2000ms));
  }
  // Queue is at capacity: the 6th submit must block (backpressure), then
  // complete once the drain thread frees space.
  std::atomic<bool> submitted{false};
  std::thread blocked([&] {
    auto f = scheduler.Submit(Sample(rng), 2000ms);
    submitted = true;
    ASSERT_TRUE(f.get().ok());
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(submitted.load());
  serve.Release();
  blocked.join();
  EXPECT_TRUE(submitted.load());
  ASSERT_TRUE(first.get().ok());
  for (auto& f : queued) ASSERT_TRUE(f.get().ok());
}

TEST(BatchSchedulerTest, StopFailsEverythingStillQueued) {
  core::Rng rng(3);
  GatedServe serve;
  BatchOptions opts;
  opts.max_batch = 2;
  opts.max_delay = 1ms;
  BatchScheduler scheduler(opts, serve.Fn());

  auto in_flight = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  auto orphan1 = scheduler.Submit(Sample(rng), 2000ms);
  auto orphan2 = scheduler.Submit(Sample(rng), 2000ms);

  std::thread stopper([&] { scheduler.Stop(); });
  std::this_thread::sleep_for(10ms);
  serve.Release();  // let the in-flight batch finish so Stop can join
  stopper.join();

  EXPECT_TRUE(in_flight.get().ok());
  auto r1 = orphan1.get();
  auto r2 = orphan2.get();
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), core::StatusCode::kUnavailable);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), core::StatusCode::kUnavailable);
  EXPECT_FALSE(scheduler.running());

  auto late = scheduler.Submit(Sample(rng), 100ms);
  EXPECT_EQ(late.get().status().code(), core::StatusCode::kUnavailable);
}

TEST(BatchSchedulerTest, BackpressureHonorsTheRequestTimeout) {
  core::Rng rng(7);
  GatedServe serve;
  BatchOptions opts;
  opts.max_batch = 4;
  opts.queue_capacity = 4;
  opts.max_delay = 1ms;
  BatchScheduler scheduler(opts, serve.Fn());

  auto first = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  std::vector<std::future<core::StatusOr<InferReply>>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(scheduler.Submit(Sample(rng), 2000ms));
  }
  // Queue at capacity and the drain thread gated: a short-deadline submit
  // must fail with kDeadlineExceeded instead of blocking its caller until
  // Stop() — the caller's budget bounds the backpressure wait.
  const auto t0 = std::chrono::steady_clock::now();
  auto rejected = scheduler.Submit(Sample(rng), 50ms).get();
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_LT(waited, 1500ms);

  serve.Release();
  ASSERT_TRUE(first.get().ok());
  for (auto& f : queued) ASSERT_TRUE(f.get().ok());
  EXPECT_EQ(scheduler.stats().submitted, 5);  // the rejected one never entered
}

TEST(BatchSchedulerTest, RejectsInputWithoutABatchDim) {
  GatedServe serve;
  serve.Release();
  BatchScheduler scheduler(BatchOptions{}, serve.Fn());
  auto result = scheduler.Submit(core::Tensor(), 100ms).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Batched serving through a real master + workers fleet.
// ---------------------------------------------------------------------------

// Fleet where EVERY device (master + each worker) hosts the same slice
// weights, so routing cannot change logits — exactly what the coalescing /
// sharding / scatter equality tests need.
class BatchedServingTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kWorkers = 2;

  BatchedServingTest()
      : fluid_(slim::FluidModel::PaperDefault(7)), master_(cfg_), rng_(99) {
    slice_ = std::make_unique<nn::Sequential>(
        fluid_.ExtractSubnet(fluid_.family().WorkerResident()));
    for (std::size_t i = 0; i < kWorkers; ++i) {
      auto [master_end, worker_end] = MakeInMemoryPair();
      workers_.push_back(std::make_unique<WorkerNode>(
          "w" + std::to_string(i), cfg_, std::move(worker_end)));
      workers_.back()->Start();
      master_.AttachWorker(std::move(master_end));
    }
  }

  ~BatchedServingTest() override {
    master_.StopServing();
    for (auto& w : workers_) w->Stop();
  }

  void DeploySameSliceEverywhere() {
    const auto range = fluid_.family().WorkerResident();
    master_.DeployLocal("slice", fluid_.ExtractSubnet(range));
    for (std::size_t i = 0; i < kWorkers; ++i) {
      ASSERT_TRUE(master_
                      .DeployToWorker("slice",
                                      ModelBlueprint::Standalone(
                                          cfg_, range.range.width()),
                                      nn::ExtractState(*slice_), 2000ms, i)
                      .ok());
    }
    Plan plan;
    plan.master_standalone = "slice";
    plan.worker_standalone = "slice";
    master_.SetPlan(plan);
    master_.SetMode(sim::Mode::kHighThroughput);
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  MasterNode master_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  std::unique_ptr<nn::Sequential> slice_;
  core::Rng rng_;
};

TEST_F(BatchedServingTest, CoalescedBatchMatchesSequentialInfersBitwise) {
  DeploySameSliceEverywhere();
  constexpr int kN = 6;
  std::vector<core::Tensor> inputs;
  for (int i = 0; i < kN; ++i) inputs.push_back(Sample(rng_));

  // Sequential ground truth: one blocking Infer per sample, scheduler off.
  std::vector<core::Tensor> sequential;
  for (const auto& x : inputs) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    sequential.push_back(std::move(reply->logits));
  }

  // Async batched: all six submitted before the coalescing window closes,
  // served as fused batches sharded across the three devices.
  BatchOptions opts;
  opts.max_batch = kN;
  opts.max_delay = 100ms;
  master_.StartServing(opts);
  std::vector<std::future<core::StatusOr<InferReply>>> futures;
  for (const auto& x : inputs) {
    futures.push_back(master_.InferAsync(x.Clone(), 2000ms));
  }
  for (int i = 0; i < kN; ++i) {
    auto reply = futures[i].get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->logits.shape(), sequential[i].shape());
    EXPECT_EQ(core::MaxAbsDiff(reply->logits, sequential[i]), 0.0F)
        << "sample " << i << " diverged (served by " << reply->served_by
        << ")";
  }
  const auto stats = master_.stats();
  EXPECT_GE(stats.batches, 1);
  EXPECT_EQ(stats.coalesced_samples, kN);
  // At least one coalesced batch actually formed (not six singletons).
  EXPECT_LT(stats.batches, kN);
  const auto serving = master_.scheduler_stats();
  EXPECT_EQ(serving.submitted, kN);
  EXPECT_GT(serving.max_batch_seen, 1);
}

TEST_F(BatchedServingTest, BatchedPipelineMatchesSequentialInfersBitwise) {
  // HA pipeline with chunked, windowed cut-activation shipping: the
  // coalesced batch must produce logits identical to one-at-a-time Infer.
  const auto& family = fluid_.family();
  master_.DeployLocal("lower50", fluid_.ExtractSubnet(family.MasterResident()));
  nn::Sequential combined = fluid_.ExtractSubnet(family.Combined());
  auto halves = train::SplitConvNet(cfg_, family.max_width(), combined, 2);
  master_.DeployLocal("front", std::move(halves.front));
  ASSERT_TRUE(master_
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg_, family.max_width(), 2),
                                  nn::ExtractState(halves.back), 2000ms, 0)
                  .ok());
  master_.SetPlan({"lower50", "", "front", "back", 0});
  master_.SetMode(sim::Mode::kHighAccuracy);

  constexpr int kN = 5;
  std::vector<core::Tensor> inputs;
  for (int i = 0; i < kN; ++i) inputs.push_back(Sample(rng_));
  std::vector<core::Tensor> sequential;
  for (const auto& x : inputs) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "pipeline:front+back@worker[0]");
    sequential.push_back(std::move(reply->logits));
  }

  BatchOptions opts;
  opts.max_batch = kN;
  opts.max_delay = 100ms;
  opts.ha_chunk = 2;   // force chunking: 5 samples -> frames of 2,2,1
  opts.ha_window = 2;  // two cut activations in flight on the link
  master_.StartServing(opts);
  std::vector<std::future<core::StatusOr<InferReply>>> futures;
  for (const auto& x : inputs) {
    futures.push_back(master_.InferAsync(x.Clone(), 2000ms));
  }
  for (int i = 0; i < kN; ++i) {
    auto reply = futures[i].get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "pipeline:front+back@worker[0]");
    EXPECT_EQ(core::MaxAbsDiff(reply->logits, sequential[i]), 0.0F)
        << "sample " << i;
  }
  EXPECT_EQ(master_.stats().stale_replies, 0);
  EXPECT_GE(workers_[0]->samples_served(), kN);
}

TEST_F(BatchedServingTest, MultiClientStressSurvivesAWorkerCrashMidBatch) {
  DeploySameSliceEverywhere();
  BatchOptions opts;
  opts.max_batch = 8;
  opts.max_delay = 1ms;
  master_.StartServing(opts);

  constexpr int kClients = 8;
  constexpr int kPerClient = 24;
  const core::Tensor x = Sample(rng_);
  const core::Tensor want = slice_->Forward(x, false);

  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        auto reply = master_.InferAsync(x.Clone(), 5000ms).get();
        if (!reply.ok()) {
          ++failures;
          continue;
        }
        if (core::MaxAbsDiff(reply->logits, want) != 0.0F) ++mismatches;
      }
    });
  }
  // Kill a worker while the clients are mid-stream: every future must
  // still resolve, correctly, via failover.
  std::this_thread::sleep_for(30ms);
  workers_[0]->Crash();
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = master_.stats();
  EXPECT_EQ(stats.served_local + stats.served_remote,
            kClients * kPerClient);
  EXPECT_GT(stats.coalesced_samples, 0);
}

TEST_F(BatchedServingTest, ReattachWorkerRevivesADeadSlotWithItsDeployments) {
  DeploySameSliceEverywhere();
  workers_[0]->Crash();
  ASSERT_EQ(master_.ProbeWorkers(), kWorkers - 1);
  ASSERT_FALSE(master_.WorkerAlive(0));

  // A fresh process takes over the dead slot; the master replays the
  // slot's deploy history onto the new link.
  auto [master_end, worker_end] = MakeInMemoryPair();
  auto revived =
      std::make_unique<WorkerNode>("w0-revived", cfg_, std::move(worker_end));
  revived->Start();
  ASSERT_TRUE(master_.ReattachWorker(0, std::move(master_end)).ok());
  EXPECT_TRUE(master_.WorkerAlive(0));
  EXPECT_EQ(master_.stats().reattaches, 1);
  const auto names = revived->DeploymentNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "slice");

  // The revived slot serves again: drive enough singles through the
  // rotation that worker[0] must take one, bit-exactly.
  const core::Tensor x = Sample(rng_);
  const core::Tensor want = slice_->Forward(x, false);
  bool saw_revived = false;
  for (int i = 0; i < 6; ++i) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F);
    if (reply->served_by == "worker[0]:slice") saw_revived = true;
  }
  EXPECT_TRUE(saw_revived);
  workers_[0] = std::move(revived);  // keep it alive until teardown

  // Guard rails: bad index, live slot, null transport.
  EXPECT_EQ(master_.ReattachWorker(7, nullptr).code(),
            core::StatusCode::kInvalidArgument);
  auto [unused_a, unused_b] = MakeInMemoryPair();
  EXPECT_EQ(master_.ReattachWorker(1, std::move(unused_a)).code(),
            core::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Correlation-id hygiene against a scripted (misbehaving) worker.
// ---------------------------------------------------------------------------

TEST(SeqCorrelationTest, StaleRepliesAreDroppedAndLoggedNotMisdelivered) {
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  // Scripted worker: acks deploys; answers each infer with a stale RESULT
  // (bogus seq) first, then the real one.
  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
        continue;
      }
      if (msg.type == MsgType::kInfer) {
        const std::int64_t rows = msg.payload.shape()[0];
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq + 9999,
                                           msg.tag,
                                           core::Tensor({rows, 10})));
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                           core::Tensor({rows, 10})));
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  ASSERT_TRUE(master
                  .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                  nn::ExtractState(upper))
                  .ok());
  Plan plan;
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(5);
  for (int i = 0; i < 3; ++i) {
    auto reply = master.Infer(Sample(rng), 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "worker[0]:m");
  }
  EXPECT_EQ(master.stats().stale_replies, 3);
  EXPECT_TRUE(master.WorkerAlive(0));
  stop = true;
  scripted.join();
}

TEST(SeqCorrelationTest, OutOfOrderWindowedRepliesAreBufferedPerSeq) {
  // Scripted pipeline back half that answers two in-flight cut frames in
  // REVERSE order: the master must park the early reply and deliver both
  // to their awaiters (no stale drops, no misdelivery).
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    std::vector<Message> held;
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
        continue;
      }
      if (msg.type != MsgType::kInfer) continue;
      held.push_back(msg);
      if (held.size() == 2) {
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
          const std::int64_t rows = it->payload.shape()[0];
          (void)end->Send(Message::WithBatch(MsgType::kResult, it->seq,
                                             it->tag,
                                             core::Tensor({rows, 10})));
        }
        held.clear();
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves = train::SplitConvNet(cfg, fluid.family().max_width(), combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  ASSERT_TRUE(master
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg, fluid.family().max_width(), 2),
                                  nn::ExtractState(halves.back))
                  .ok());
  master.SetPlan({"", "", "front", "back", 0});
  master.SetMode(sim::Mode::kHighAccuracy);

  BatchOptions opts;
  opts.max_batch = 4;
  opts.max_delay = 50ms;
  opts.ha_chunk = 2;   // 4 samples -> exactly two frames...
  opts.ha_window = 2;  // ...both in flight before the first await
  master.StartServing(opts);

  core::Rng rng(6);
  auto future = master.InferAsync(Sample(rng, 4), 2000ms);
  auto reply = future.get();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->logits.shape(), core::Shape({4, 10}));
  EXPECT_EQ(master.stats().stale_replies, 0);
  EXPECT_TRUE(master.WorkerAlive(0));
  master.StopServing();
  stop = true;
  scripted.join();
}

TEST(SeqCorrelationTest, AbandonedPipelineChunksAreDeregisteredNotLeaked) {
  // Back half errors chunk 0 while chunk 1 is still in flight: the
  // pipeline fails over, and chunk 1's seq must be DEREGISTERED — its
  // late reply gets the (bounded, counted) stale-drop, not a permanent
  // slot in the reply buffer — while the worker stays alive and
  // heartbeats keep working on the same link.
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    std::vector<Message> held;
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kHeartbeat) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kInfer) {
        held.push_back(msg);
        if (held.size() == 2) {
          (void)end->Send(Message::HeaderOnly(MsgType::kError, held[0].seq,
                                              "injected back-half failure"));
          const std::int64_t rows = held[1].payload.shape()[0];
          (void)end->Send(Message::WithBatch(MsgType::kResult, held[1].seq,
                                             held[1].tag,
                                             core::Tensor({rows, 10})));
          held.clear();
        }
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves =
      train::SplitConvNet(cfg, fluid.family().max_width(), combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  ASSERT_TRUE(master
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg, fluid.family().max_width(), 2),
                                  nn::ExtractState(halves.back))
                  .ok());
  master.SetPlan({"lower50", "", "front", "back", 0});
  master.SetMode(sim::Mode::kHighAccuracy);

  BatchOptions opts;
  opts.max_batch = 4;
  opts.ha_chunk = 2;
  opts.ha_window = 2;
  master.StartServing(opts);

  core::Rng rng(8);
  auto reply = master.InferAsync(Sample(rng, 4), 2000ms).get();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "master:lower50");  // failed over whole
  EXPECT_GE(master.stats().failovers, 1);

  // The link is still healthy: the heartbeat drains chunk 1's orphaned
  // reply as a stale drop on the way to its ack.
  EXPECT_EQ(master.ProbeWorkers(), 1u);
  EXPECT_TRUE(master.WorkerAlive(0));
  EXPECT_GE(master.stats().stale_replies, 1);
  master.StopServing();
  stop = true;
  scripted.join();
}

// ---------------------------------------------------------------------------
// Byzantine result payloads: shape dims come straight off the wire, so a
// reply with the right row count but wrong trailing dims must fail over —
// never scatter past the end of the batch's logits allocation.
// ---------------------------------------------------------------------------

TEST(ByzantineWorkerTest, OversizedShardResultFailsOverInsteadOfCorrupting) {
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  // Scripted worker: acks deploys, answers every infer with the right
  // number of rows but SEVEN extra classes per row.
  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kInfer) {
        const std::int64_t rows = msg.payload.shape()[0];
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                           core::Tensor({rows, 17})));
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  ASSERT_TRUE(master
                  .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                  nn::ExtractState(upper))
                  .ok());
  Plan plan;
  plan.master_standalone = "lower50";
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  // Two samples shard across {master, worker}: the local shard seeds the
  // [2, classes] allocation, the worker's oversized reply must be rejected
  // and its shard re-served locally, bit-exactly.
  core::Rng rng(11);
  nn::Sequential reference =
      fluid.ExtractSubnet(fluid.family().MasterResident());
  const core::Tensor x = Sample(rng, 2);
  const core::Tensor want = reference.Forward(x, false);
  auto reply = master.Infer(x, 2000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "master:lower50");
  ASSERT_EQ(reply->logits.shape(), want.shape());
  EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F);
  EXPECT_GE(master.stats().failovers, 1);
  stop = true;
  scripted.join();
}

TEST(ByzantineWorkerTest, HonestWorkerReservesTheShardABadPeerAnswered) {
  // No master-resident slice: result validation must be anchored to the
  // config's class count, so one byzantine peer fails only its own shard
  // (re-served by the honest worker) instead of poisoning the batch.
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [m0, w0] = MakeInMemoryPair();
  auto honest = std::make_unique<WorkerNode>("honest", cfg, std::move(w0));
  honest->Start();
  master.AttachWorker(std::move(m0));

  auto [m1, w1] = MakeInMemoryPair();
  master.AttachWorker(std::move(m1));
  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(w1)]() mutable {
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kInfer) {
        const std::int64_t rows = msg.payload.shape()[0];
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                           core::Tensor({rows, 17})));
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(master
                    .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                    nn::ExtractState(upper), 2000ms, i)
                    .ok());
  }
  Plan plan;
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(13);
  const core::Tensor x = Sample(rng, 2);
  const core::Tensor want = upper.Forward(x, false);
  auto reply = master.Infer(x, 2000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "worker[0]:m");
  ASSERT_EQ(reply->logits.shape(), want.shape());
  EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F);
  EXPECT_GE(master.stats().failovers, 1);
  honest->Stop();
  stop = true;
  scripted.join();
}

TEST(ByzantineWorkerTest, ZeroWindowAwaitDoesNotCondemnTheSecondWorker) {
  // Two silent workers (they ack control messages but never answer a
  // shard). Awaiting the first shard burns the whole batch deadline in a
  // real window — that worker is rightly condemned. The second shard is
  // then awaited with a ZERO window: it must fail over DeadlineExceeded
  // without marking a worker dead that never had a chance to answer.
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  std::atomic<bool> stop{false};
  std::vector<std::thread> silent;
  for (int i = 0; i < 2; ++i) {
    auto [m, w] = MakeInMemoryPair();
    master.AttachWorker(std::move(m));
    silent.emplace_back([&stop, end = std::move(w)]() mutable {
      while (!stop) {
        Message msg;
        if (!end->Recv(msg, 50ms).ok()) continue;
        if (msg.type == MsgType::kDeploy || msg.type == MsgType::kHeartbeat) {
          (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
        }
        // kInfer is swallowed: no shard is ever answered.
      }
      end->Close();
    });
  }

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(master
                    .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                    nn::ExtractState(upper), 2000ms, i)
                    .ok());
  }
  Plan plan;
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(23);
  auto reply = master.Infer(Sample(rng, 2), 150ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_FALSE(master.WorkerAlive(0));  // in-window timeout: condemned
  EXPECT_TRUE(master.WorkerAlive(1));   // zero-window await: spared
  EXPECT_EQ(master.ProbeWorkers(), 1u);
  stop = true;
  for (auto& t : silent) t.join();
}

TEST(ByzantineWorkerTest, MisconfiguredLocalHeadAbandonsInFlightShards) {
  // A local model whose head disagrees with config num_classes fails the
  // batch in phase 2, AFTER phase 1 already shipped remote shards. Those
  // in-flight seqs must be deregistered: the worker's late reply has to
  // take the bounded stale-drop path, not sit in the reply buffer forever.
  slim::FluidNetConfig cfg;  // num_classes = 10
  MasterNode master(cfg);
  auto [m0, w0] = MakeInMemoryPair();
  auto worker = std::make_unique<WorkerNode>("w", cfg, std::move(w0));
  worker->Start();
  master.AttachWorker(std::move(m0));

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  ASSERT_TRUE(master
                  .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                  nn::ExtractState(upper))
                  .ok());
  slim::FluidNetConfig weird_cfg;
  weird_cfg.num_classes = 7;  // deployment bug: 7-way head, config says 10
  core::Rng model_rng(21);
  master.DeployLocal("weird", train::BuildConvNet(weird_cfg, 8, model_rng));
  Plan plan;
  plan.master_standalone = "weird";
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(22);
  auto reply = master.Infer(Sample(rng, 2), 2000ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), core::StatusCode::kInternal);

  // The link stays healthy; the heartbeat drains the abandoned shard's
  // reply as a counted stale drop instead of leaking it.
  EXPECT_EQ(master.ProbeWorkers(), 1u);
  EXPECT_TRUE(master.WorkerAlive(0));
  EXPECT_GE(master.stats().stale_replies, 1);
  worker->Stop();
}

TEST(ByzantineWorkerTest, PipelineChunkClassMismatchFailsOverToResident) {
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  // Scripted back half: the first chunk's reply is honest-shaped, every
  // later chunk grows two classes — same row counts throughout, so only
  // payload-size validation can catch it.
  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    std::int64_t infers = 0;
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kInfer) {
        const std::int64_t rows = msg.payload.shape()[0];
        const std::int64_t classes = infers++ == 0 ? 10 : 12;
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                           core::Tensor({rows, classes})));
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves =
      train::SplitConvNet(cfg, fluid.family().max_width(), combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  ASSERT_TRUE(master
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg, fluid.family().max_width(), 2),
                                  nn::ExtractState(halves.back))
                  .ok());
  master.SetPlan({"lower50", "", "front", "back", 0});
  master.SetMode(sim::Mode::kHighAccuracy);

  BatchOptions opts;
  opts.max_batch = 4;
  opts.ha_chunk = 2;  // 4 samples -> two frames; the second one is bogus
  opts.ha_window = 2;
  master.StartServing(opts);

  core::Rng rng(12);
  nn::Sequential reference =
      fluid.ExtractSubnet(fluid.family().MasterResident());
  const core::Tensor x = Sample(rng, 4);
  const core::Tensor want = reference.Forward(x, false);
  auto reply = master.InferAsync(x.Clone(), 2000ms).get();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "master:lower50");  // whole batch failed over
  ASSERT_EQ(reply->logits.shape(), want.shape());
  EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F);
  EXPECT_GE(master.stats().failovers, 1);
  master.StopServing();
  stop = true;
  scripted.join();
}

}  // namespace
}  // namespace fluid::dist
