#include "dist/serving_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "dist/master.h"
#include "dist/worker.h"
#include "nn/checkpoint.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

core::Tensor Sample(core::Rng& rng, std::int64_t n = 1) {
  return core::Tensor::UniformRandom({n, 1, 28, 28}, rng, 0, 1);
}

// ---------------------------------------------------------------------------
// BatchScheduler unit tests (stub serve callback, no master involved).
// ---------------------------------------------------------------------------

// Serve-side stub: pulls chunks like the master's drain loop, with a gate
// so tests control exactly when each chunk completes. Default gating is
// post-assembly (the chunk is grabbed, then held in service while more work
// arrives); `gate_before_grab` holds the *assembly* itself, for tests that
// stage the pool between chunk boundaries.
struct StubServe {
  std::mutex mu;
  std::condition_variable cv;
  bool gate_before_grab = false;
  bool open = false;
  int permits = 0;

  struct Rec {
    std::int64_t rows;
    std::size_t slices;
    Priority top;
    const BatchScheduler::Request* first;
    std::chrono::steady_clock::time_point urgent;
  };
  std::vector<Rec> chunks;

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }

  void Allow(int n) {
    {
      std::lock_guard<std::mutex> lock(mu);
      permits += n;
    }
    cv.notify_all();
  }

  std::size_t Count() {
    std::lock_guard<std::mutex> lock(mu);
    return chunks.size();
  }

  Rec At(std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    return chunks.at(i);
  }

  void Gate() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open || permits > 0; });
    if (!open) --permits;
  }

  BatchScheduler::ServeFn Fn() {
    return [this](BatchScheduler& sched) {
      BatchScheduler::WorkChunk chunk;
      for (;;) {
        if (gate_before_grab) Gate();
        if (!sched.NextChunk(sched.options().max_batch, 1ms, chunk)) return;
        if (!gate_before_grab) Gate();
        {
          std::lock_guard<std::mutex> lock(mu);
          chunks.push_back({chunk.rows, chunk.slices.size(), chunk.top,
                            chunk.slices.front().req, chunk.urgent_deadline});
        }
        core::Tensor logits({chunk.rows, 1});
        sched.CompleteChunk(chunk, logits, "stub");
      }
    };
  }
};

TEST(BatchSchedulerTest, CoalescesQueuedRequestsIntoOneChunk) {
  core::Rng rng(1);
  StubServe serve;
  BatchOptions opts;
  opts.max_batch = 8;
  opts.max_delay = 5ms;
  BatchScheduler scheduler(opts, serve.Fn());

  // First submit is grabbed alone while the gate holds its chunk in
  // service; the next four pool up behind it and must assemble into ONE
  // chunk — one slice per request — at the next chunk boundary.
  auto first = scheduler.Submit(Sample(rng), 2000ms);
  // Wait until the drain thread has the first request in a chunk (depth 0).
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  std::vector<std::future<core::StatusOr<InferReply>>> rest;
  for (int i = 0; i < 4; ++i) rest.push_back(scheduler.Submit(Sample(rng), 2000ms));
  serve.Release();

  ASSERT_TRUE(first.get().ok());
  for (auto& f : rest) ASSERT_TRUE(f.get().ok());

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 5);
  EXPECT_EQ(stats.completed, 5);
  EXPECT_EQ(stats.coalesced_samples, 5);
  ASSERT_EQ(serve.Count(), 2u);
  EXPECT_EQ(serve.At(0).rows, 1);
  EXPECT_EQ(serve.At(1).rows, 4);
  EXPECT_EQ(serve.At(1).slices, 4u);  // four requests rode one chunk
  EXPECT_NEAR(stats.avg_batch, 2.5, 1e-9);
  EXPECT_EQ(stats.active_requests, 0);
  EXPECT_EQ(stats.running_requests, 0);
  // Occupancy is an EMA over the *active pool* (per-assembly samples of
  // active_requests / max_active_reqs) — nonzero once anything served.
  EXPECT_GT(stats.occupancy, 0.0);
  EXPECT_LE(stats.occupancy, 1.0);
}

TEST(BatchSchedulerTest, BoundedQueueBlocksSubmitUntilSpace) {
  core::Rng rng(2);
  StubServe serve;
  BatchOptions opts;
  opts.max_batch = 4;
  opts.queue_capacity = 4;
  opts.max_delay = 1ms;
  BatchScheduler scheduler(opts, serve.Fn());

  auto first = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  std::vector<std::future<core::StatusOr<InferReply>>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(scheduler.Submit(Sample(rng), 2000ms));
  }
  // Queue is at capacity: the 6th submit must block (backpressure), then
  // complete once the drain thread frees space.
  std::atomic<bool> submitted{false};
  std::thread blocked([&] {
    auto f = scheduler.Submit(Sample(rng), 2000ms);
    submitted = true;
    ASSERT_TRUE(f.get().ok());
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(submitted.load());
  serve.Release();
  blocked.join();
  EXPECT_TRUE(submitted.load());
  ASSERT_TRUE(first.get().ok());
  for (auto& f : queued) ASSERT_TRUE(f.get().ok());
}

TEST(BatchSchedulerTest, StopFailsEverythingStillQueued) {
  core::Rng rng(3);
  StubServe serve;
  BatchOptions opts;
  opts.max_batch = 2;
  opts.max_delay = 1ms;
  BatchScheduler scheduler(opts, serve.Fn());

  auto in_flight = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  auto orphan1 = scheduler.Submit(Sample(rng), 2000ms);
  auto orphan2 = scheduler.Submit(Sample(rng), 2000ms);

  std::thread stopper([&] { scheduler.Stop(); });
  std::this_thread::sleep_for(10ms);
  serve.Release();  // let the in-flight batch finish so Stop can join
  stopper.join();

  EXPECT_TRUE(in_flight.get().ok());
  auto r1 = orphan1.get();
  auto r2 = orphan2.get();
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), core::StatusCode::kUnavailable);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), core::StatusCode::kUnavailable);
  EXPECT_FALSE(scheduler.running());

  auto late = scheduler.Submit(Sample(rng), 100ms);
  EXPECT_EQ(late.get().status().code(), core::StatusCode::kUnavailable);
}

TEST(BatchSchedulerTest, BackpressureHonorsTheRequestTimeout) {
  core::Rng rng(7);
  StubServe serve;
  BatchOptions opts;
  opts.max_batch = 4;
  opts.queue_capacity = 4;
  opts.max_delay = 1ms;
  BatchScheduler scheduler(opts, serve.Fn());

  auto first = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  std::vector<std::future<core::StatusOr<InferReply>>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(scheduler.Submit(Sample(rng), 2000ms));
  }
  // Queue at capacity and the drain thread gated: a short-deadline submit
  // must fail with kDeadlineExceeded instead of blocking its caller until
  // Stop() — the caller's budget bounds the backpressure wait.
  const auto t0 = std::chrono::steady_clock::now();
  auto rejected = scheduler.Submit(Sample(rng), 50ms).get();
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_LT(waited, 1500ms);

  serve.Release();
  ASSERT_TRUE(first.get().ok());
  for (auto& f : queued) ASSERT_TRUE(f.get().ok());
  EXPECT_EQ(scheduler.stats().submitted, 5);  // the rejected one never entered
}

TEST(BatchSchedulerTest, RejectsInputWithoutABatchDim) {
  StubServe serve;
  serve.Release();
  BatchScheduler scheduler(BatchOptions{}, serve.Fn());
  auto result = scheduler.Submit(core::Tensor(), 100ms).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
}

TEST(BatchSchedulerTest, AdmissionCapBoundsTheActivePool) {
  core::Rng rng(4);
  StubServe serve;
  BatchOptions opts;
  opts.max_batch = 1;
  opts.max_active_reqs = 2;
  BatchScheduler scheduler(opts, serve.Fn());

  // r1 is grabbed into a chunk (RUNNING) and gated; r2 fills the second
  // and last active slot (READY). A third submit must block on admission
  // even though the backlog is far under queue_capacity.
  auto r1 = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  auto r2 = scheduler.Submit(Sample(rng), 2000ms);
  std::atomic<bool> admitted{false};
  std::thread burst([&] {
    auto r3 = scheduler.Submit(Sample(rng), 2000ms);
    admitted = true;
    ASSERT_TRUE(r3.get().ok());
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(scheduler.stats().submitted, 2);  // r3 not yet admitted
  EXPECT_EQ(scheduler.stats().active_requests, 2);

  serve.Release();  // r1 completes -> a slot frees -> r3 enters
  burst.join();
  EXPECT_TRUE(admitted.load());
  ASSERT_TRUE(r1.get().ok());
  ASSERT_TRUE(r2.get().ok());
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.max_active_seen, 2);  // the cap really did bound the pool
  EXPECT_EQ(stats.class_submitted[1], 3);
}

TEST(BatchSchedulerTest, StrictPriorityPreemptsLowerClassesAtChunkBoundaries) {
  core::Rng rng(5);
  StubServe serve;
  BatchOptions opts;
  opts.max_batch = 1;  // one-row chunks: the chunk order IS the schedule
  BatchScheduler scheduler(opts, serve.Fn());

  auto normal = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  // Low arrives BEFORE high; class order must beat arrival order at the
  // next chunk boundary.
  auto low = scheduler.Submit(Sample(rng), SubmitOptions{2000ms, Priority::kLow});
  auto high =
      scheduler.Submit(Sample(rng), SubmitOptions{2000ms, Priority::kHigh});
  serve.Release();

  ASSERT_TRUE(normal.get().ok());
  ASSERT_TRUE(low.get().ok());
  ASSERT_TRUE(high.get().ok());
  ASSERT_EQ(serve.Count(), 3u);
  EXPECT_EQ(serve.At(0).top, Priority::kNormal);
  EXPECT_EQ(serve.At(1).top, Priority::kHigh);
  EXPECT_EQ(serve.At(2).top, Priority::kLow);
  const auto stats = scheduler.stats();
  // Exactly one preemptive decision: high's chunk filled while low waited.
  EXPECT_EQ(stats.preemptions, 1);
  EXPECT_EQ(stats.class_submitted[0], 1);
  EXPECT_EQ(stats.class_submitted[1], 1);
  EXPECT_EQ(stats.class_submitted[2], 1);
}

TEST(BatchSchedulerTest, EarliestDeadlineFirstWithinAClass) {
  core::Rng rng(8);
  StubServe serve;
  BatchOptions opts;
  opts.max_batch = 1;
  BatchScheduler scheduler(opts, serve.Fn());

  auto running = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  // Same class, tighter budget submitted later: EDF must reorder.
  auto patient = scheduler.Submit(Sample(rng), 1500ms);
  auto urgent = scheduler.Submit(Sample(rng), 300ms);
  serve.Release();

  ASSERT_TRUE(running.get().ok());
  ASSERT_TRUE(patient.get().ok());
  ASSERT_TRUE(urgent.get().ok());
  ASSERT_EQ(serve.Count(), 3u);
  // Chunk 1 (urgent) carries a tighter deadline than chunk 2 (patient).
  EXPECT_LT(serve.At(1).urgent, serve.At(2).urgent);
}

TEST(BatchSchedulerTest, ExpiredReadyRequestFailsWithoutWastingService) {
  core::Rng rng(6);
  StubServe serve;
  BatchOptions opts;
  opts.max_batch = 1;
  BatchScheduler scheduler(opts, serve.Fn());

  auto running = scheduler.Submit(Sample(rng), 2000ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  // This one expires while READY, behind the gated in-service chunk. At
  // the next chunk boundary it must fail kDeadlineExceeded — never reach
  // a chunk, never burn service on a result nobody is waiting for.
  auto doomed = scheduler.Submit(Sample(rng), 50ms);
  std::this_thread::sleep_for(80ms);
  serve.Release();

  ASSERT_TRUE(running.get().ok());
  auto r = doomed.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(serve.Count(), 1u);  // only the running request was ever served
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.deadline_misses, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(BatchSchedulerTest, LateDeliveryStillDeliversAndCountsTheMiss) {
  core::Rng rng(9);
  StubServe serve;
  BatchScheduler scheduler(BatchOptions{}, serve.Fn());

  // The request is RUNNING (chunk in service) when its deadline passes:
  // serving late beats dropping, but the SLO miss must be counted.
  auto slow = scheduler.Submit(Sample(rng), 60ms);
  for (int spin = 0; spin < 200 && scheduler.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  std::this_thread::sleep_for(100ms);
  serve.Release();
  auto r = slow.get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(scheduler.stats().deadline_misses, 1);
}

TEST(BatchSchedulerTest, NewArrivalSplicesInAtTheNextChunkBoundary) {
  core::Rng rng(10);
  StubServe serve;
  serve.gate_before_grab = true;  // stage the pool between assemblies
  BatchOptions opts;
  opts.max_batch = 2;
  BatchScheduler scheduler(opts, serve.Fn());

  auto big = scheduler.Submit(Sample(rng, 6), 2000ms);
  serve.Allow(1);  // chunk 1: the big request's first two rows
  for (int spin = 0; spin < 400 && serve.Count() < 1; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(serve.Count(), 1u);
  // A high-class request lands mid-service: its first rows must lead the
  // NEXT chunk — time-to-first-chunk excludes the big request's residual
  // four rows.
  auto urgent =
      scheduler.Submit(Sample(rng), SubmitOptions{2000ms, Priority::kHigh});
  serve.Release();

  ASSERT_TRUE(urgent.get().ok());
  ASSERT_TRUE(big.get().ok());
  ASSERT_EQ(serve.Count(), 4u);  // rows [2], [urgent+1], [2], [1]
  EXPECT_EQ(serve.At(1).top, Priority::kHigh);
  EXPECT_EQ(serve.At(1).rows, 2);
  EXPECT_EQ(serve.At(1).slices, 2u);  // urgent + one resumed big row
  EXPECT_NE(serve.At(1).first, serve.At(0).first);  // urgent leads the chunk
  EXPECT_EQ(serve.At(3).rows, 1);
}

TEST(BatchSchedulerTest, MultiClientPriorityStressResolvesEveryRequest) {
  StubServe serve;
  serve.Release();  // no gating: full-speed continuous serving
  BatchOptions opts;
  opts.max_batch = 4;
  opts.max_active_reqs = 8;
  opts.queue_capacity = 64;
  opts.max_delay = 0ms;
  BatchScheduler scheduler(opts, serve.Fn());

  // Six clients, three classes, mixed sample counts, each keeping a small
  // window of submits in flight — 18 potential concurrent requests over a
  // pool of 8, so admission, preemption and chunk interleaving all run hot
  // concurrently. Every future must resolve ok. (The dist suite runs under
  // TSan in CI; this is the preemption-stress it checks.)
  constexpr int kClients = 6;
  constexpr int kPerClient = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      core::Rng rng(100 + c);
      std::vector<std::future<core::StatusOr<InferReply>>> window;
      for (int i = 0; i < kPerClient; ++i) {
        SubmitOptions o;
        o.timeout = 5000ms;
        o.priority = static_cast<Priority>((c + i) % 3);
        window.push_back(scheduler.Submit(Sample(rng, 1 + i % 3), o));
        if (window.size() == 3) {
          for (auto& f : window) {
            if (!f.get().ok()) ++failures;
          }
          window.clear();
        }
      }
      for (auto& f : window) {
        if (!f.get().ok()) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.active_requests, 0);
  EXPECT_EQ(stats.running_requests, 0);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.class_submitted[0] + stats.class_submitted[1] +
                stats.class_submitted[2],
            kClients * kPerClient);
  EXPECT_GT(stats.max_active_seen, 1);
}

// ---------------------------------------------------------------------------
// Batched serving through a real master + workers fleet.
// ---------------------------------------------------------------------------

// Fleet where EVERY device (master + each worker) hosts the same slice
// weights, so routing cannot change logits — exactly what the coalescing /
// sharding / scatter equality tests need.
class BatchedServingTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kWorkers = 2;

  BatchedServingTest()
      : fluid_(slim::FluidModel::PaperDefault(7)), master_(cfg_), rng_(99) {
    slice_ = std::make_unique<nn::Sequential>(
        fluid_.ExtractSubnet(fluid_.family().WorkerResident()));
    for (std::size_t i = 0; i < kWorkers; ++i) {
      auto [master_end, worker_end] = MakeInMemoryPair();
      workers_.push_back(std::make_unique<WorkerNode>(
          "w" + std::to_string(i), cfg_, std::move(worker_end)));
      workers_.back()->Start();
      master_.AttachWorker(std::move(master_end));
    }
  }

  ~BatchedServingTest() override {
    master_.StopServing();
    for (auto& w : workers_) w->Stop();
  }

  void DeploySameSliceEverywhere() {
    const auto range = fluid_.family().WorkerResident();
    master_.DeployLocal("slice", fluid_.ExtractSubnet(range));
    for (std::size_t i = 0; i < kWorkers; ++i) {
      ASSERT_TRUE(master_
                      .DeployToWorker("slice",
                                      ModelBlueprint::Standalone(
                                          cfg_, range.range.width()),
                                      nn::ExtractState(*slice_), 2000ms, i)
                      .ok());
    }
    Plan plan;
    plan.master_standalone = "slice";
    plan.worker_standalone = "slice";
    master_.SetPlan(plan);
    master_.SetMode(sim::Mode::kHighThroughput);
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  MasterNode master_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  std::unique_ptr<nn::Sequential> slice_;
  core::Rng rng_;
};

TEST_F(BatchedServingTest, CoalescedBatchMatchesSequentialInfersBitwise) {
  DeploySameSliceEverywhere();
  constexpr int kN = 6;
  std::vector<core::Tensor> inputs;
  for (int i = 0; i < kN; ++i) inputs.push_back(Sample(rng_));

  // Sequential ground truth: one blocking Infer per sample, scheduler off.
  std::vector<core::Tensor> sequential;
  for (const auto& x : inputs) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    sequential.push_back(std::move(reply->logits));
  }

  // Async batched: all six submitted before the coalescing window closes,
  // served as fused batches sharded across the three devices.
  BatchOptions opts;
  opts.max_batch = kN;
  opts.max_delay = 100ms;
  master_.StartServing(opts);
  std::vector<std::future<core::StatusOr<InferReply>>> futures;
  for (const auto& x : inputs) {
    futures.push_back(master_.InferAsync(x.Clone(), 2000ms));
  }
  for (int i = 0; i < kN; ++i) {
    auto reply = futures[i].get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->logits.shape(), sequential[i].shape());
    EXPECT_EQ(core::MaxAbsDiff(reply->logits, sequential[i]), 0.0F)
        << "sample " << i << " diverged (served by " << reply->served_by
        << ")";
  }
  const auto stats = master_.stats();
  EXPECT_GE(stats.batches, 1);
  EXPECT_EQ(stats.coalesced_samples, kN);
  // At least one coalesced batch actually formed (not six singletons).
  EXPECT_LT(stats.batches, kN);
  const auto serving = master_.scheduler_stats();
  EXPECT_EQ(serving.submitted, kN);
  EXPECT_GT(serving.max_active_seen, 1);
}

TEST_F(BatchedServingTest, BatchedPipelineMatchesSequentialInfersBitwise) {
  // HA pipeline with chunked, windowed cut-activation shipping: the
  // coalesced batch must produce logits identical to one-at-a-time Infer.
  const auto& family = fluid_.family();
  master_.DeployLocal("lower50", fluid_.ExtractSubnet(family.MasterResident()));
  nn::Sequential combined = fluid_.ExtractSubnet(family.Combined());
  auto halves = train::SplitConvNet(cfg_, family.max_width(), combined, 2);
  master_.DeployLocal("front", std::move(halves.front));
  ASSERT_TRUE(master_
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg_, family.max_width(), 2),
                                  nn::ExtractState(halves.back), 2000ms, 0)
                  .ok());
  master_.SetPlan({"lower50", "", "front", "back", 0});
  master_.SetMode(sim::Mode::kHighAccuracy);

  constexpr int kN = 5;
  std::vector<core::Tensor> inputs;
  for (int i = 0; i < kN; ++i) inputs.push_back(Sample(rng_));
  std::vector<core::Tensor> sequential;
  for (const auto& x : inputs) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "pipeline:front+back@worker[0]");
    sequential.push_back(std::move(reply->logits));
  }

  BatchOptions opts;
  opts.max_batch = kN;
  opts.max_delay = 100ms;
  opts.ha_chunk = 2;   // force chunking: 5 samples -> frames of 2,2,1
  opts.ha_window = 2;  // two cut activations in flight on the link
  master_.StartServing(opts);
  std::vector<std::future<core::StatusOr<InferReply>>> futures;
  for (const auto& x : inputs) {
    futures.push_back(master_.InferAsync(x.Clone(), 2000ms));
  }
  for (int i = 0; i < kN; ++i) {
    auto reply = futures[i].get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "pipeline:front+back@worker[0]");
    EXPECT_EQ(core::MaxAbsDiff(reply->logits, sequential[i]), 0.0F)
        << "sample " << i;
  }
  EXPECT_EQ(master_.stats().stale_replies, 0);
  EXPECT_GE(workers_[0]->samples_served(), kN);
}

TEST_F(BatchedServingTest, MixedPriorityChunkInterleavingIsBitwiseExact) {
  // Three multi-sample requests of different classes share the HA pipeline
  // window: two-row chunks interleave their rows on the wire, yet every
  // request's logits must be bitwise what a lone sequential Infer produces
  // — the fused forward is per-sample deterministic, so the schedule can
  // never show through in the numbers.
  const auto& family = fluid_.family();
  master_.DeployLocal("lower50", fluid_.ExtractSubnet(family.MasterResident()));
  nn::Sequential combined = fluid_.ExtractSubnet(family.Combined());
  auto halves = train::SplitConvNet(cfg_, family.max_width(), combined, 2);
  master_.DeployLocal("front", std::move(halves.front));
  ASSERT_TRUE(master_
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg_, family.max_width(), 2),
                                  nn::ExtractState(halves.back), 2000ms, 0)
                  .ok());
  master_.SetPlan({"lower50", "", "front", "back", 0});
  master_.SetMode(sim::Mode::kHighAccuracy);

  const std::int64_t sizes[3] = {3, 2, 4};
  const Priority classes[3] = {Priority::kLow, Priority::kHigh,
                               Priority::kNormal};
  std::vector<core::Tensor> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(Sample(rng_, sizes[i]));
  std::vector<core::Tensor> sequential;
  for (const auto& x : inputs) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    sequential.push_back(std::move(reply->logits));
  }

  BatchOptions opts;
  opts.max_batch = 16;
  opts.max_delay = 50ms;
  opts.ha_chunk = 2;
  opts.ha_window = 2;
  master_.StartServing(opts);
  std::vector<std::future<core::StatusOr<InferReply>>> futures;
  for (int i = 0; i < 3; ++i) {
    SubmitOptions o;
    o.timeout = 2000ms;
    o.priority = classes[i];
    futures.push_back(master_.InferAsync(inputs[i].Clone(), o));
  }
  for (int i = 0; i < 3; ++i) {
    auto reply = futures[i].get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "pipeline:front+back@worker[0]");
    EXPECT_EQ(core::MaxAbsDiff(reply->logits, sequential[i]), 0.0F)
        << "request " << i;
  }
  EXPECT_EQ(master_.stats().stale_replies, 0);
  const auto serving = master_.scheduler_stats();
  EXPECT_EQ(serving.class_submitted[0], 1);
  EXPECT_EQ(serving.class_submitted[1], 1);
  EXPECT_EQ(serving.class_submitted[2], 1);
  // Scheduled frames carried the v4 SLO block: the worker accounted every
  // async-path sample to its class (the 9 sequential warm-up samples rode
  // inline frames without one).
  EXPECT_GT(workers_[0]->slo_frames(), 0);
  EXPECT_EQ(workers_[0]->samples_served_class(0) +
                workers_[0]->samples_served_class(1) +
                workers_[0]->samples_served_class(2),
            9);
}

TEST(PipelineSloTest, ReadyRequestExpiresWhileThePipelineIsMidFlight) {
  // A scripted back half holds the in-flight chunk's reply hostage while a
  // short-deadline request waits READY behind it. At the next chunk
  // boundary the scheduler must expire the waiter (kDeadlineExceeded,
  // counted) and still deliver the held request — expiry is a scheduling
  // decision, not a pipeline failure.
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  std::atomic<bool> stop{false};
  std::atomic<bool> got_frame{false};
  std::atomic<bool> release{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    std::vector<Message> held;
    while (!stop) {
      Message msg;
      const auto st = end->Recv(msg, 10ms);
      if (st.ok()) {
        if (msg.type == MsgType::kDeploy || msg.type == MsgType::kHeartbeat) {
          (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
        } else if (msg.type == MsgType::kInfer) {
          held.push_back(msg);
          got_frame = true;
        }
      }
      if (release && !held.empty()) {
        for (auto& m : held) {
          const std::int64_t rows = m.payload.shape()[0];
          (void)end->Send(Message::WithBatch(MsgType::kResult, m.seq, m.tag,
                                             core::Tensor({rows, 10})));
        }
        held.clear();
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves =
      train::SplitConvNet(cfg, fluid.family().max_width(), combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  ASSERT_TRUE(master
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg, fluid.family().max_width(), 2),
                                  nn::ExtractState(halves.back))
                  .ok());
  master.SetPlan({"", "", "front", "back", 0});
  master.SetMode(sim::Mode::kHighAccuracy);

  BatchOptions opts;
  opts.max_batch = 4;
  opts.max_delay = 0ms;
  opts.ha_chunk = 4;
  opts.ha_window = 1;
  master.StartServing(opts);

  core::Rng rng(31);
  auto held_req = master.InferAsync(Sample(rng, 2), 2000ms);
  for (int spin = 0; spin < 400 && !got_frame; ++spin) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(got_frame.load());
  auto doomed =
      master.InferAsync(Sample(rng), SubmitOptions{50ms, Priority::kHigh});
  std::this_thread::sleep_for(80ms);  // deadline passes mid-pipeline
  release = true;

  auto ra = held_req.get();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rd = doomed.get();
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(master.scheduler_stats().deadline_misses, 1);
  EXPECT_EQ(master.stats().failovers, 0);  // expiry is not a failover
  master.StopServing();
  stop = true;
  scripted.join();
}

TEST_F(BatchedServingTest, MultiClientStressSurvivesAWorkerCrashMidBatch) {
  DeploySameSliceEverywhere();
  BatchOptions opts;
  opts.max_batch = 8;
  opts.max_delay = 1ms;
  master_.StartServing(opts);

  constexpr int kClients = 8;
  constexpr int kPerClient = 24;
  const core::Tensor x = Sample(rng_);
  const core::Tensor want = slice_->Forward(x, false);

  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        auto reply = master_.InferAsync(x.Clone(), 5000ms).get();
        if (!reply.ok()) {
          ++failures;
          continue;
        }
        if (core::MaxAbsDiff(reply->logits, want) != 0.0F) ++mismatches;
      }
    });
  }
  // Kill a worker while the clients are mid-stream: every future must
  // still resolve, correctly, via failover.
  std::this_thread::sleep_for(30ms);
  workers_[0]->Crash();
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = master_.stats();
  EXPECT_EQ(stats.served_local + stats.served_remote,
            kClients * kPerClient);
  EXPECT_GT(stats.coalesced_samples, 0);
}

TEST_F(BatchedServingTest, ReattachWorkerRevivesADeadSlotWithItsDeployments) {
  DeploySameSliceEverywhere();
  workers_[0]->Crash();
  ASSERT_EQ(master_.ProbeWorkers(), kWorkers - 1);
  ASSERT_FALSE(master_.WorkerAlive(0));

  // A fresh process takes over the dead slot; the master replays the
  // slot's deploy history onto the new link.
  auto [master_end, worker_end] = MakeInMemoryPair();
  auto revived =
      std::make_unique<WorkerNode>("w0-revived", cfg_, std::move(worker_end));
  revived->Start();
  ASSERT_TRUE(master_.ReattachWorker(0, std::move(master_end)).ok());
  EXPECT_TRUE(master_.WorkerAlive(0));
  EXPECT_EQ(master_.stats().reattaches, 1);
  const auto names = revived->DeploymentNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "slice");

  // The revived slot serves again: drive enough singles through the
  // rotation that worker[0] must take one, bit-exactly.
  const core::Tensor x = Sample(rng_);
  const core::Tensor want = slice_->Forward(x, false);
  bool saw_revived = false;
  for (int i = 0; i < 6; ++i) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F);
    if (reply->served_by == "worker[0]:slice") saw_revived = true;
  }
  EXPECT_TRUE(saw_revived);
  workers_[0] = std::move(revived);  // keep it alive until teardown

  // Guard rails: bad index, live slot, null transport.
  EXPECT_EQ(master_.ReattachWorker(7, nullptr).code(),
            core::StatusCode::kInvalidArgument);
  auto [unused_a, unused_b] = MakeInMemoryPair();
  EXPECT_EQ(master_.ReattachWorker(1, std::move(unused_a)).code(),
            core::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Correlation-id hygiene against a scripted (misbehaving) worker.
// ---------------------------------------------------------------------------

TEST(SeqCorrelationTest, StaleRepliesAreDroppedAndLoggedNotMisdelivered) {
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  // Scripted worker: acks deploys; answers each infer with a stale RESULT
  // (bogus seq) first, then the real one.
  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
        continue;
      }
      if (msg.type == MsgType::kInfer) {
        const std::int64_t rows = msg.payload.shape()[0];
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq + 9999,
                                           msg.tag,
                                           core::Tensor({rows, 10})));
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                           core::Tensor({rows, 10})));
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  ASSERT_TRUE(master
                  .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                  nn::ExtractState(upper))
                  .ok());
  Plan plan;
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(5);
  for (int i = 0; i < 3; ++i) {
    auto reply = master.Infer(Sample(rng), 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "worker[0]:m");
  }
  EXPECT_EQ(master.stats().stale_replies, 3);
  EXPECT_TRUE(master.WorkerAlive(0));
  stop = true;
  scripted.join();
}

TEST(SeqCorrelationTest, OutOfOrderWindowedRepliesAreBufferedPerSeq) {
  // Scripted pipeline back half that answers two in-flight cut frames in
  // REVERSE order: the master must park the early reply and deliver both
  // to their awaiters (no stale drops, no misdelivery).
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    std::vector<Message> held;
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
        continue;
      }
      if (msg.type != MsgType::kInfer) continue;
      held.push_back(msg);
      if (held.size() == 2) {
        for (auto it = held.rbegin(); it != held.rend(); ++it) {
          const std::int64_t rows = it->payload.shape()[0];
          (void)end->Send(Message::WithBatch(MsgType::kResult, it->seq,
                                             it->tag,
                                             core::Tensor({rows, 10})));
        }
        held.clear();
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves = train::SplitConvNet(cfg, fluid.family().max_width(), combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  ASSERT_TRUE(master
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg, fluid.family().max_width(), 2),
                                  nn::ExtractState(halves.back))
                  .ok());
  master.SetPlan({"", "", "front", "back", 0});
  master.SetMode(sim::Mode::kHighAccuracy);

  BatchOptions opts;
  opts.max_batch = 4;
  opts.max_delay = 50ms;
  opts.ha_chunk = 2;   // 4 samples -> exactly two frames...
  opts.ha_window = 2;  // ...both in flight before the first await
  master.StartServing(opts);

  core::Rng rng(6);
  auto future = master.InferAsync(Sample(rng, 4), 2000ms);
  auto reply = future.get();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->logits.shape(), core::Shape({4, 10}));
  EXPECT_EQ(master.stats().stale_replies, 0);
  EXPECT_TRUE(master.WorkerAlive(0));
  master.StopServing();
  stop = true;
  scripted.join();
}

TEST(SeqCorrelationTest, AbandonedPipelineChunksAreDeregisteredNotLeaked) {
  // Back half errors chunk 0 while chunk 1 is still in flight: the
  // pipeline fails over, and chunk 1's seq must be DEREGISTERED — its
  // late reply gets the (bounded, counted) stale-drop, not a permanent
  // slot in the reply buffer — while the worker stays alive and
  // heartbeats keep working on the same link.
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    std::vector<Message> held;
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kHeartbeat) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kInfer) {
        held.push_back(msg);
        if (held.size() == 2) {
          (void)end->Send(Message::HeaderOnly(MsgType::kError, held[0].seq,
                                              "injected back-half failure"));
          const std::int64_t rows = held[1].payload.shape()[0];
          (void)end->Send(Message::WithBatch(MsgType::kResult, held[1].seq,
                                             held[1].tag,
                                             core::Tensor({rows, 10})));
          held.clear();
        }
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves =
      train::SplitConvNet(cfg, fluid.family().max_width(), combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  ASSERT_TRUE(master
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg, fluid.family().max_width(), 2),
                                  nn::ExtractState(halves.back))
                  .ok());
  master.SetPlan({"lower50", "", "front", "back", 0});
  master.SetMode(sim::Mode::kHighAccuracy);

  BatchOptions opts;
  opts.max_batch = 4;
  opts.ha_chunk = 2;
  opts.ha_window = 2;
  master.StartServing(opts);

  core::Rng rng(8);
  auto reply = master.InferAsync(Sample(rng, 4), 2000ms).get();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "master:lower50");  // failed over whole
  EXPECT_GE(master.stats().failovers, 1);

  // The link is still healthy: the heartbeat drains chunk 1's orphaned
  // reply as a stale drop on the way to its ack.
  EXPECT_EQ(master.ProbeWorkers(), 1u);
  EXPECT_TRUE(master.WorkerAlive(0));
  EXPECT_GE(master.stats().stale_replies, 1);
  master.StopServing();
  stop = true;
  scripted.join();
}

// ---------------------------------------------------------------------------
// Byzantine result payloads: shape dims come straight off the wire, so a
// reply with the right row count but wrong trailing dims must fail over —
// never scatter past the end of the batch's logits allocation.
// ---------------------------------------------------------------------------

TEST(ByzantineWorkerTest, OversizedShardResultFailsOverInsteadOfCorrupting) {
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  // Scripted worker: acks deploys, answers every infer with the right
  // number of rows but SEVEN extra classes per row.
  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kInfer) {
        const std::int64_t rows = msg.payload.shape()[0];
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                           core::Tensor({rows, 17})));
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  ASSERT_TRUE(master
                  .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                  nn::ExtractState(upper))
                  .ok());
  Plan plan;
  plan.master_standalone = "lower50";
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  // Two samples shard across {master, worker}: the local shard seeds the
  // [2, classes] allocation, the worker's oversized reply must be rejected
  // and its shard re-served locally, bit-exactly.
  core::Rng rng(11);
  nn::Sequential reference =
      fluid.ExtractSubnet(fluid.family().MasterResident());
  const core::Tensor x = Sample(rng, 2);
  const core::Tensor want = reference.Forward(x, false);
  auto reply = master.Infer(x, 2000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "master:lower50");
  ASSERT_EQ(reply->logits.shape(), want.shape());
  EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F);
  EXPECT_GE(master.stats().failovers, 1);
  stop = true;
  scripted.join();
}

TEST(ByzantineWorkerTest, HonestWorkerReservesTheShardABadPeerAnswered) {
  // No master-resident slice: result validation must be anchored to the
  // config's class count, so one byzantine peer fails only its own shard
  // (re-served by the honest worker) instead of poisoning the batch.
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [m0, w0] = MakeInMemoryPair();
  auto honest = std::make_unique<WorkerNode>("honest", cfg, std::move(w0));
  honest->Start();
  master.AttachWorker(std::move(m0));

  auto [m1, w1] = MakeInMemoryPair();
  master.AttachWorker(std::move(m1));
  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(w1)]() mutable {
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kInfer) {
        const std::int64_t rows = msg.payload.shape()[0];
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                           core::Tensor({rows, 17})));
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(master
                    .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                    nn::ExtractState(upper), 2000ms, i)
                    .ok());
  }
  Plan plan;
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(13);
  const core::Tensor x = Sample(rng, 2);
  const core::Tensor want = upper.Forward(x, false);
  auto reply = master.Infer(x, 2000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "worker[0]:m");
  ASSERT_EQ(reply->logits.shape(), want.shape());
  EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F);
  EXPECT_GE(master.stats().failovers, 1);
  honest->Stop();
  stop = true;
  scripted.join();
}

TEST(ByzantineWorkerTest, ZeroWindowAwaitDoesNotCondemnTheSecondWorker) {
  // Two silent workers (they ack control messages but never answer a
  // shard). Awaiting the first shard burns the whole batch deadline in a
  // real window — that worker is rightly condemned. The second shard is
  // then awaited with a ZERO window: it must fail over DeadlineExceeded
  // without marking a worker dead that never had a chance to answer.
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  std::atomic<bool> stop{false};
  std::vector<std::thread> silent;
  for (int i = 0; i < 2; ++i) {
    auto [m, w] = MakeInMemoryPair();
    master.AttachWorker(std::move(m));
    silent.emplace_back([&stop, end = std::move(w)]() mutable {
      while (!stop) {
        Message msg;
        if (!end->Recv(msg, 50ms).ok()) continue;
        if (msg.type == MsgType::kDeploy || msg.type == MsgType::kHeartbeat) {
          (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
        }
        // kInfer is swallowed: no shard is ever answered.
      }
      end->Close();
    });
  }

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(master
                    .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                    nn::ExtractState(upper), 2000ms, i)
                    .ok());
  }
  Plan plan;
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(23);
  auto reply = master.Infer(Sample(rng, 2), 150ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_FALSE(master.WorkerAlive(0));  // in-window timeout: condemned
  EXPECT_TRUE(master.WorkerAlive(1));   // zero-window await: spared
  EXPECT_EQ(master.ProbeWorkers(), 1u);
  stop = true;
  for (auto& t : silent) t.join();
}

TEST(ByzantineWorkerTest, MisconfiguredLocalHeadAbandonsInFlightShards) {
  // A local model whose head disagrees with config num_classes fails the
  // batch in phase 2, AFTER phase 1 already shipped remote shards. Those
  // in-flight seqs must be deregistered: the worker's late reply has to
  // take the bounded stale-drop path, not sit in the reply buffer forever.
  slim::FluidNetConfig cfg;  // num_classes = 10
  MasterNode master(cfg);
  auto [m0, w0] = MakeInMemoryPair();
  auto worker = std::make_unique<WorkerNode>("w", cfg, std::move(w0));
  worker->Start();
  master.AttachWorker(std::move(m0));

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  ASSERT_TRUE(master
                  .DeployToWorker("m", ModelBlueprint::Standalone(cfg, 8),
                                  nn::ExtractState(upper))
                  .ok());
  slim::FluidNetConfig weird_cfg;
  weird_cfg.num_classes = 7;  // deployment bug: 7-way head, config says 10
  core::Rng model_rng(21);
  master.DeployLocal("weird", train::BuildConvNet(weird_cfg, 8, model_rng));
  Plan plan;
  plan.master_standalone = "weird";
  plan.worker_standalone = "m";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(22);
  auto reply = master.Infer(Sample(rng, 2), 2000ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), core::StatusCode::kInternal);

  // The link stays healthy; the heartbeat drains the abandoned shard's
  // reply as a counted stale drop instead of leaking it.
  EXPECT_EQ(master.ProbeWorkers(), 1u);
  EXPECT_TRUE(master.WorkerAlive(0));
  EXPECT_GE(master.stats().stale_replies, 1);
  worker->Stop();
}

TEST(ByzantineWorkerTest, PipelineChunkClassMismatchFailsOverToResident) {
  slim::FluidNetConfig cfg;
  MasterNode master(cfg);
  auto [master_end, worker_end] = MakeInMemoryPair();
  master.AttachWorker(std::move(master_end));

  // Scripted back half: every chunk reply keeps the right row count but
  // grows two classes — only payload-size validation can catch it. The
  // first bad frame condemns the pipeline, and the already-shipped second
  // frame must be abandoned (not trusted) along with it.
  std::atomic<bool> stop{false};
  std::thread scripted([&, end = std::move(worker_end)]() mutable {
    while (!stop) {
      Message msg;
      if (!end->Recv(msg, 50ms).ok()) continue;
      if (msg.type == MsgType::kDeploy) {
        (void)end->Send(Message::HeaderOnly(MsgType::kAck, msg.seq));
      } else if (msg.type == MsgType::kInfer) {
        const std::int64_t rows = msg.payload.shape()[0];
        (void)end->Send(Message::WithBatch(MsgType::kResult, msg.seq, msg.tag,
                                           core::Tensor({rows, 12})));
      }
    }
    end->Close();
  });

  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential combined = fluid.ExtractSubnet(fluid.family().Combined());
  auto halves =
      train::SplitConvNet(cfg, fluid.family().max_width(), combined, 2);
  master.DeployLocal("front", std::move(halves.front));
  master.DeployLocal("lower50",
                     fluid.ExtractSubnet(fluid.family().MasterResident()));
  ASSERT_TRUE(master
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(
                                      cfg, fluid.family().max_width(), 2),
                                  nn::ExtractState(halves.back))
                  .ok());
  master.SetPlan({"lower50", "", "front", "back", 0});
  master.SetMode(sim::Mode::kHighAccuracy);

  BatchOptions opts;
  opts.max_batch = 4;
  opts.ha_chunk = 2;  // 4 samples -> two frames; the second one is bogus
  opts.ha_window = 2;
  master.StartServing(opts);

  core::Rng rng(12);
  nn::Sequential reference =
      fluid.ExtractSubnet(fluid.family().MasterResident());
  const core::Tensor x = Sample(rng, 4);
  const core::Tensor want = reference.Forward(x, false);
  auto reply = master.InferAsync(x.Clone(), 2000ms).get();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "master:lower50");  // whole batch failed over
  ASSERT_EQ(reply->logits.shape(), want.shape());
  EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F);
  EXPECT_GE(master.stats().failovers, 1);
  master.StopServing();
  stop = true;
  scripted.join();
}

}  // namespace
}  // namespace fluid::dist
