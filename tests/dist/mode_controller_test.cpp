#include "dist/mode_controller.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "dist/orchestrator.h"
#include "dist/worker.h"
#include "nn/checkpoint.h"
#include "sim/scenario.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

TEST(ModeControllerTest, PrefersHighAccuracyWhileItKeepsUp) {
  ModeController c(10.0, 30.0);
  EXPECT_EQ(c.mode(), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.Decide(5.0), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.Decide(9.9), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.switches(), 0);
}

TEST(ModeControllerTest, FlipsToHighThroughputAboveHaCapacity) {
  ModeController c(10.0, 30.0);
  EXPECT_EQ(c.Decide(12.0), sim::Mode::kHighThroughput);
  EXPECT_EQ(c.switches(), 1);
}

TEST(ModeControllerTest, HysteresisPreventsThrashAtTheBoundary) {
  ModeController c(10.0, 30.0, 0.2);
  EXPECT_EQ(c.Decide(12.0), sim::Mode::kHighThroughput);
  // Demand hovers just under HA capacity: inside the hysteresis band, the
  // controller must hold HT.
  EXPECT_EQ(c.Decide(9.5), sim::Mode::kHighThroughput);
  EXPECT_EQ(c.Decide(8.5), sim::Mode::kHighThroughput);
  EXPECT_EQ(c.switches(), 1);
  // Clearly below the band: back to HA.
  EXPECT_EQ(c.Decide(7.9), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.switches(), 2);
}

TEST(ModeControllerTest, CountsEverySwitch) {
  ModeController c(10.0, 30.0, 0.1);
  c.Decide(15.0);  // -> HT
  c.Decide(5.0);   // -> HA
  c.Decide(15.0);  // -> HT
  c.Decide(5.0);   // -> HA
  EXPECT_EQ(c.switches(), 4);
}

TEST(ModeControllerTest, RejectsBadConstruction) {
  EXPECT_THROW(ModeController(0.0, 30.0), core::Error);
  EXPECT_THROW(ModeController(10.0, 30.0, 1.5), core::Error);
}

// The survival matrix is the paper's Fig. 1 ground truth; the simulator
// must agree cell by cell (operational ⇔ survives).
TEST(SurvivalMatrixTest, MatchesFig2EvaluatorOperationalFlags) {
  sim::SystemProfile p;
  p.static_front_latency_s = 0.04;
  p.static_back_latency_s = 0.03;
  p.static_cut_bytes = 3136;
  p.w50_latency_s = 0.07;
  p.upper50_latency_s = 0.07;
  p.acc_static = 0.99;
  p.acc_dynamic_full = 0.99;
  p.acc_dynamic_w50 = 0.97;
  p.acc_fluid_full = 0.99;
  p.acc_fluid_lower50 = 0.98;
  p.acc_fluid_upper50 = 0.98;
  p.link.latency_s = 0.01;
  p.link.bandwidth_bytes_per_s = 1e7;
  const sim::Fig2Evaluator eval(p);
  for (const auto type : {sim::DnnType::kStatic, sim::DnnType::kDynamic,
                          sim::DnnType::kFluid}) {
    for (const auto a :
         {sim::Availability::kBothOnline, sim::Availability::kOnlyMaster,
          sim::Availability::kOnlyWorker}) {
      const auto r = eval.Evaluate(type, a, sim::Mode::kHighThroughput);
      EXPECT_EQ(r.operational, SurvivesFailure(type, a))
          << sim::DnnTypeName(type) << " / " << sim::AvailabilityName(a);
    }
  }
}

TEST(SurvivalMatrixTest, EncodesThePaperRow) {
  // Static survives nothing; Dynamic survives only a worker failure
  // (= only the master left); Fluid survives either single failure.
  EXPECT_FALSE(SurvivesFailure(sim::DnnType::kStatic,
                               sim::Availability::kOnlyMaster));
  EXPECT_FALSE(SurvivesFailure(sim::DnnType::kStatic,
                               sim::Availability::kOnlyWorker));
  EXPECT_TRUE(SurvivesFailure(sim::DnnType::kDynamic,
                              sim::Availability::kOnlyMaster));
  EXPECT_FALSE(SurvivesFailure(sim::DnnType::kDynamic,
                               sim::Availability::kOnlyWorker));
  EXPECT_TRUE(SurvivesFailure(sim::DnnType::kFluid,
                              sim::Availability::kOnlyMaster));
  EXPECT_TRUE(SurvivesFailure(sim::DnnType::kFluid,
                              sim::Availability::kOnlyWorker));
}

// ---- Orchestrator over a live master/worker pair ---------------------------

class OrchestratorTest : public ::testing::Test {
 protected:
  OrchestratorTest() : fluid_(slim::FluidModel::PaperDefault(7)), master_(cfg_) {
    auto [master_end, worker_end] = MakeInMemoryPair();
    worker_ = std::make_unique<WorkerNode>("w0", cfg_, std::move(worker_end));
    worker_->Start();
    master_.AttachWorker(std::move(master_end));
    master_.DeployLocal("lower50",
                        fluid_.ExtractSubnet(fluid_.family().MasterResident()));
    nn::Sequential upper =
        fluid_.ExtractSubnet(fluid_.family().WorkerResident());
    EXPECT_TRUE(master_
                    .DeployToWorker("upper50",
                                    ModelBlueprint::Standalone(cfg_, 8),
                                    nn::ExtractState(upper))
                    .ok());
    Plan plan;
    plan.master_standalone = "lower50";
    plan.worker_standalone = "upper50";
    master_.SetPlan(plan);
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  MasterNode master_;
  std::unique_ptr<WorkerNode> worker_;
};

TEST_F(OrchestratorTest, QuietDemandStaysHighAccuracy) {
  Orchestrator orch(master_, {.ha_capacity = 10.0, .ht_capacity = 30.0});
  const auto report = orch.Tick(4.0);
  EXPECT_EQ(report.mode, sim::Mode::kHighAccuracy);
  EXPECT_EQ(report.alive_workers, 1u);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(master_.mode(), sim::Mode::kHighAccuracy);
  EXPECT_EQ(orch.ticks(), 1);
}

TEST_F(OrchestratorTest, BurstFlipsTheMasterToHighThroughput) {
  Orchestrator orch(master_, {.ha_capacity = 10.0, .ht_capacity = 30.0});
  orch.Tick(4.0);
  const auto report = orch.Tick(25.0);
  EXPECT_EQ(report.mode, sim::Mode::kHighThroughput);
  EXPECT_EQ(master_.mode(), sim::Mode::kHighThroughput);
  EXPECT_EQ(orch.controller().switches(), 1);
}

TEST_F(OrchestratorTest, ProbeSpotsACrashedWorkerAndReportsDegraded) {
  Orchestrator orch(master_, {.ha_capacity = 10.0, .ht_capacity = 30.0});
  EXPECT_EQ(orch.Tick(4.0).alive_workers, 1u);
  worker_->Crash();
  const auto report = orch.Tick(4.0);
  EXPECT_EQ(report.alive_workers, 0u);
  EXPECT_TRUE(report.degraded);
  // Capacity collapses to the master's own share of the fleet.
  EXPECT_LT(report.capacity, 30.0 / 2 + 1e-9);
}

TEST_F(OrchestratorTest, DeadBackWorkerMakesHighAccuracyInfeasible) {
  // Give the plan a pipeline hosted on worker 0, then kill it: even at
  // quiet demand the orchestrator must report/deploy HT, because the HA
  // operating point no longer exists.
  nn::Sequential combined = fluid_.ExtractSubnet(fluid_.family().Combined());
  auto halves = train::SplitConvNet(cfg_, 16, combined, 2);
  master_.DeployLocal("front", std::move(halves.front));
  ASSERT_TRUE(master_
                  .DeployToWorker("back",
                                  ModelBlueprint::PipelineBack(cfg_, 16, 2),
                                  nn::ExtractState(halves.back))
                  .ok());
  Plan plan = master_.plan();
  plan.pipeline_front = "front";
  plan.pipeline_back = "back";
  master_.SetPlan(plan);

  Orchestrator orch(master_, {.ha_capacity = 10.0, .ht_capacity = 30.0});
  EXPECT_EQ(orch.Tick(4.0).mode, sim::Mode::kHighAccuracy);
  worker_->Crash();
  const auto report = orch.Tick(4.0);
  EXPECT_EQ(report.mode, sim::Mode::kHighThroughput);
  EXPECT_EQ(master_.mode(), sim::Mode::kHighThroughput);
  EXPECT_LT(report.capacity, 30.0 / 2 + 1e-9);
}

TEST(ModeControllerNoHeadroomTest, NeverTradesAccuracyForNothing) {
  // HT no faster than HA: flipping would pay accuracy for zero capacity.
  ModeController c(10.0, 10.0);
  EXPECT_EQ(c.Decide(50.0), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.switches(), 0);
}

TEST(ModeControllerBacklogTest, SaturatedQueueFlipsToHtEvenWhenDemandLies) {
  // The demand estimate claims all is well, but the serving queue has a
  // standing backlog of full batches — direct evidence the HA operating
  // point cannot keep up. The backlog signal must force the flip.
  ModeController c(10.0, 30.0);
  ModeController::DemandSignal signal;
  signal.demand = 5.0;  // nominally well under ha_capacity
  signal.queue_depth = 32.0;
  signal.pool_occupancy = 0.95;
  EXPECT_EQ(c.Decide(signal), sim::Mode::kHighThroughput);
  EXPECT_EQ(c.switches(), 1);
}

TEST(ModeControllerBacklogTest, UnderOccupiedBatchesDoNotForceTheFlip) {
  // Depth without occupancy (a transient burst that coalesces into small
  // batches) is not saturation; the scalar policy governs.
  ModeController c(10.0, 30.0);
  ModeController::DemandSignal signal;
  signal.demand = 5.0;
  signal.queue_depth = 32.0;
  signal.pool_occupancy = 0.2;
  EXPECT_EQ(c.Decide(signal), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.switches(), 0);

  // And an empty queue never inflates demand, whatever the occupancy.
  signal.queue_depth = 0.0;
  signal.pool_occupancy = 1.0;
  EXPECT_EQ(c.Decide(signal), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.switches(), 0);
}

TEST(ModeControllerSloTest, DeadlineMissesFlipToHtWhateverDemandClaims) {
  // No backlog, quiet demand estimate — but requests are provably missing
  // their deadlines. The miss-rate alarm alone must force the flip.
  ModeController c(10.0, 30.0);
  ModeController::DemandSignal signal;
  signal.demand = 2.0;
  signal.deadline_miss_rate = 0.05;  // 5% of completions late
  EXPECT_EQ(c.Decide(signal), sim::Mode::kHighThroughput);
  EXPECT_EQ(c.switches(), 1);
}

TEST(ModeControllerSloTest, MissRateBelowTheAlarmDoesNotForceTheFlip) {
  ModeController c(10.0, 30.0);
  ModeController::DemandSignal signal;
  signal.demand = 2.0;
  signal.deadline_miss_rate = ModeController::kMissRateAlarm;  // at, not above
  EXPECT_EQ(c.Decide(signal), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.switches(), 0);
}

TEST(ModeControllerSloTest, HighClassShareSharpensTheMissResponse) {
  // Same miss rate, but the pool is dominated by the highest class: the
  // pressure term must clear a hysteresis band the class-free signal
  // would not. With hysteresis 0.1, flipping back requires effective
  // demand < 9.0; miss pressure (1 + 0.02) * 10 = 10.2 keeps HT pinned
  // only when the high-class share is counted in.
  ModeController c(10.0, 30.0);
  EXPECT_EQ(c.Decide(50.0), sim::Mode::kHighThroughput);
  ModeController::DemandSignal signal;
  signal.demand = 1.0;  // demand collapsed: nominally flip back to HA
  signal.deadline_miss_rate = 0.02;
  signal.high_class_share = 1.0;
  // Pressure (1 + 0.02 + 1.0) * ha = 20.2 » band: HT holds.
  EXPECT_EQ(c.Decide(signal), sim::Mode::kHighThroughput);
  EXPECT_EQ(c.switches(), 1);
  // Misses stop: demand governs again and the controller returns to HA.
  signal.deadline_miss_rate = 0.0;
  signal.high_class_share = 1.0;
  EXPECT_EQ(c.Decide(signal), sim::Mode::kHighAccuracy);
  EXPECT_EQ(c.switches(), 2);
}

TEST_F(OrchestratorTest, ServingContinuesAcrossTheWholeDegradation) {
  Orchestrator orch(master_, {.ha_capacity = 10.0, .ht_capacity = 30.0});
  core::Rng rng(5);
  const core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  orch.Tick(25.0);  // HT fan-out
  ASSERT_TRUE(master_.Infer(x, 2000ms).ok());
  worker_->Crash();
  orch.Tick(25.0);  // probe notices, stays HT, degraded
  auto reply = master_.Infer(x, 2000ms);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->served_by, "master:lower50");
}

}  // namespace
}  // namespace fluid::dist
