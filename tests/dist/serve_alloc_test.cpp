// Steady-state memory discipline on the live serve path, measured with
// the counting allocator (core/alloc_count.h): once the pools are warm,
// a model forward allocates nothing, and a full closed-loop request —
// RPC framing, wire transfer, shard scatter/gather — stays within a
// pinned per-request budget far below one allocation per layer.
//
// The warmup loops matter: the first requests grow thread-local GEMM
// scratch, fill the buffer-pool free lists and let the thread pool's
// dynamic chunk assignment visit every worker. The tests measure only
// after a full pass with zero (or stable) heap traffic has been observed.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>

#include <gtest/gtest.h>

#include "core/alloc_count.h"
#include "core/buffer_pool.h"
#include "core/rng.h"
#include "dist/master.h"
#include "dist/worker.h"
#include "nn/checkpoint.h"
#include "obs/trace.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

std::uint64_t AllocsDuring(const std::function<void()>& fn) {
  const auto before = core::AllocCount();
  fn();
  return core::AllocCount() - before;
}

// Run `fn` until one full pass touches the heap `target` times or fewer
// (the pools are warm), then return true. False if `tries` passes never
// get there.
bool WarmUntilStable(const std::function<void()>& fn, std::uint64_t target,
                     int tries = 50) {
  for (int i = 0; i < tries; ++i) {
    if (AllocsDuring(fn) <= target) return true;
  }
  return false;
}

TEST(ForwardAllocTest, Fp32ForwardReachesZeroSteadyStateAllocs) {
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential model = fluid.ExtractSubnet(fluid.family().Combined());
  core::Rng rng(11);
  const core::Tensor x = core::Tensor::UniformRandom({4, 1, 28, 28}, rng, 0, 1);
  auto forward = [&] {
    core::Tensor out = model.Forward(x, false);
    core::RecycleTensor(std::move(out));
  };
  ASSERT_TRUE(WarmUntilStable(forward, 0))
      << "fp32 forward never reached an alloc-free pass";
  // Once reached, it must hold: the pools ping-pong every activation.
  const auto before = core::AllocCount();
  for (int i = 0; i < 10; ++i) forward();
  EXPECT_EQ(core::AllocCount() - before, 0u);
}

TEST(ForwardAllocTest, Int8ForwardReachesZeroSteadyStateAllocs) {
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  nn::Sequential model =
      fluid.ExtractSubnetQuantized(fluid.family().Combined());
  core::Rng rng(12);
  const core::Tensor x = core::Tensor::UniformRandom({4, 1, 28, 28}, rng, 0, 1);
  auto forward = [&] {
    core::Tensor out = model.Forward(x, false);
    core::RecycleTensor(std::move(out));
  };
  ASSERT_TRUE(WarmUntilStable(forward, 0))
      << "int8 forward never reached an alloc-free pass";
  const auto before = core::AllocCount();
  for (int i = 0; i < 10; ++i) forward();
  EXPECT_EQ(core::AllocCount() - before, 0u);
}

// One master + one worker over the in-memory pair — the closed-loop
// topology of the serving bench, scaled down.
class ServeAllocTest : public ::testing::Test {
 protected:
  ServeAllocTest()
      : fluid_(slim::FluidModel::PaperDefault(7)), master_(cfg_), rng_(31) {
    // Start from a deterministic pool state: earlier tests in the same
    // process park buffers of their own shapes on the global lists, which
    // shifts which classes this fixture's warmup leaves cold.
    core::PoolFlushThisThread();
    core::PoolTrimGlobal();
    auto [master_end, worker_end] = MakeInMemoryPair();
    worker_ = std::make_unique<WorkerNode>("w0", cfg_, std::move(worker_end));
    worker_->Start();
    master_.AttachWorker(std::move(master_end));
  }

  void DeployPaperPlan(bool quant_pipeline = false,
                       bool quant_input = false) {
    const auto& family = fluid_.family();
    master_.DeployLocal("lower50",
                        fluid_.ExtractSubnet(family.MasterResident()));
    nn::Sequential combined = fluid_.ExtractSubnet(family.Combined());
    auto halves = train::SplitConvNet(cfg_, family.max_width(), combined, 2);
    master_.DeployLocal("front", std::move(halves.front));
    auto back_bp = ModelBlueprint::PipelineBack(cfg_, family.max_width(), 2);
    back_bp.quant.int8_wire = quant_pipeline;
    ASSERT_TRUE(master_
                    .DeployToWorker("back", back_bp,
                                    nn::ExtractState(halves.back))
                    .ok());
    nn::Sequential upper = fluid_.ExtractSubnet(family.WorkerResident());
    auto upper_bp =
        ModelBlueprint::Standalone(cfg_, family.WorkerResident().range.width());
    upper_bp.quant.int8_input_wire = quant_input;
    ASSERT_TRUE(master_
                    .DeployToWorker("upper50", upper_bp,
                                    nn::ExtractState(upper))
                    .ok());
    master_.SetPlan({"lower50", "upper50", "front", "back"});
  }

  // One closed-loop request; the reply's logits recycle so the next
  // request's buffers come from the pool, like the bench clients do.
  void ServeOne() {
    auto reply = master_.Infer(x_, 5000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    core::RecycleTensor(std::move(reply->logits));
  }

  // Average allocations and heap bytes per request over `n` requests.
  struct PerRequestCost {
    double allocs = 0;
    double bytes = 0;
  };
  PerRequestCost MeasurePerRequest(int n) {
    const auto pool_before = core::PoolStatsSnapshot();
    const auto allocs_before = core::AllocCount();
    const auto bytes_before = core::AllocBytes();
    for (int i = 0; i < n; ++i) ServeOne();
    PerRequestCost cost;
    cost.allocs = static_cast<double>(core::AllocCount() - allocs_before) / n;
    cost.bytes = static_cast<double>(core::AllocBytes() - bytes_before) / n;
    const auto pool = core::PoolStatsSnapshot();
    std::printf("  [steady state: %.2f allocs/req, %.0f bytes/req; pool "
                "%.2f gets %.2f hits %.2f discards /req]\n",
                cost.allocs, cost.bytes,
                static_cast<double>(pool.gets - pool_before.gets) / n,
                static_cast<double>(pool.hits - pool_before.hits) / n,
                static_cast<double>(pool.discards - pool_before.discards) / n);
    return cost;
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  MasterNode master_;
  std::unique_ptr<WorkerNode> worker_;
  core::Rng rng_;
  const core::Tensor x_ =
      core::Tensor::UniformRandom({1, 1, 28, 28}, rng_, 0, 1);
};

// The sync (scheduler-off) path: request bookkeeping, one RPC every
// other request (round-robin master/worker), wire encode/decode. The
// budget pins the measured steady state (~3.9 allocs / ~0.8 KB per
// request — the attribution vector plus RPC control blocks; the shared
// labels are interned at SetPlan, and shared-first routing keeps the
// large classes from the old ~1 % pool-miss tail) with headroom; the
// pre-pool baseline was ~35 allocs and ~9 KB.
TEST_F(ServeAllocTest, SyncServePathStaysWithinAllocBudget) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighThroughput);
  ASSERT_TRUE(WarmUntilStable([&] { ServeOne(); }, 6))
      << "sync serve path never stabilized";
  const PerRequestCost cost = MeasurePerRequest(50);
  EXPECT_LE(cost.allocs, 6.0);
  EXPECT_LE(cost.bytes, 1536.0);
}

// Scheduler on: adds the promise/future pair and queue hand-off per
// request — a few more irreducible control allocations, still bounded.
TEST_F(ServeAllocTest, AsyncBatchedServePathStaysWithinAllocBudget) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighThroughput);
  master_.StartServing(BatchOptions{});
  ASSERT_TRUE(WarmUntilStable([&] { ServeOne(); }, 12))
      << "async serve path never stabilized";
  const PerRequestCost cost = MeasurePerRequest(50);
  EXPECT_LE(cost.allocs, 12.0);
  EXPECT_LE(cost.bytes, 2560.0);
  master_.StopServing();
}

// HighAccuracy int8 pipeline, scheduler off: per chunk, the cut
// activations quantize into pooled staging and cross the wire as v3
// frames; the reply logits land in a pooled tensor. Budget covers the
// chunk bookkeeping (in-flight queue, seq tracking, label strings).
TEST_F(ServeAllocTest, QuantPipelineSyncServeStaysWithinAllocBudget) {
  DeployPaperPlan(/*quant_pipeline=*/true);
  master_.SetMode(sim::Mode::kHighAccuracy);
  ASSERT_TRUE(WarmUntilStable([&] { ServeOne(); }, 11))
      << "quant pipeline serve path never stabilized";
  const PerRequestCost cost = MeasurePerRequest(50);
  EXPECT_LE(cost.allocs, 11.0);
  EXPECT_LE(cost.bytes, 1024.0);
  EXPECT_GT(master_.stats().quant_cut_frames, 0u);
}

// HighAccuracy int8 pipeline behind the scheduler — the configuration
// the open-loop bench drives at 900 req/s.
TEST_F(ServeAllocTest, QuantPipelineAsyncServeStaysWithinAllocBudget) {
  DeployPaperPlan(/*quant_pipeline=*/true);
  master_.SetMode(sim::Mode::kHighAccuracy);
  master_.StartServing(BatchOptions{});
  ASSERT_TRUE(WarmUntilStable([&] { ServeOne(); }, 16))
      << "quant pipeline async serve path never stabilized";
  const PerRequestCost cost = MeasurePerRequest(50);
  EXPECT_LE(cost.allocs, 16.0);
  EXPECT_LE(cost.bytes, 3584.0);
  master_.StopServing();
}

// Observability on: the async budget above must hold unchanged with
// 1-in-16 sampled tracing and the v6 trace block active on the link (the
// cluster bench's operating point). A sampled-out request pays one
// relaxed counter bump; a sampled request's spans are POD copies into
// the tracer's preallocated ring and the trace block rides the pooled
// encode buffer — none of it may show up in the per-request heap numbers.
TEST_F(ServeAllocTest, AsyncServeBudgetUnchangedWithSampledTracing) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighThroughput);
  master_.StartServing(BatchOptions{});
  master_.EnableTraceWire(0);
  auto serve_traced = [&] {
    SubmitOptions so;
    so.timeout = 5000ms;
    // The router's front door, inlined: 1 in N requests carries a trace.
    so.trace_id = obs::Tracer::Global().MaybeStartTrace();
    // Pooled input copy, like Infer and the bench clients — a plain copy
    // of x_ would charge a fresh 3 KB heap tensor to every request.
    auto reply = master_.InferAsync(core::AcquireTensorCopy(x_), so).get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    core::RecycleTensor(std::move(reply->logits));
  };
  // Warm with every request traced so the one-time registrations (the
  // wire-latency histogram's shard buckets on the first traced reply)
  // land outside the measured window, then drop to the 1-in-16 rate.
  obs::Tracer::Global().SetSampleEvery(1);
  for (int i = 0; i < 8; ++i) serve_traced();
  obs::Tracer::Global().SetSampleEvery(16);
  ASSERT_TRUE(WarmUntilStable(serve_traced, 12))
      << "traced async serve path never stabilized";
  const auto pool_before = core::PoolStatsSnapshot();
  const auto allocs_before = core::AllocCount();
  const auto bytes_before = core::AllocBytes();
  const auto spans_before = obs::Tracer::Global().recorded();
  const int n = 64;  // 4 sampled requests at 1-in-16
  for (int i = 0; i < n; ++i) serve_traced();
  const double allocs =
      static_cast<double>(core::AllocCount() - allocs_before) / n;
  const double bytes =
      static_cast<double>(core::AllocBytes() - bytes_before) / n;
  const auto pool = core::PoolStatsSnapshot();
  std::printf("  [traced steady state: %.2f allocs/req, %.0f bytes/req; pool "
              "%.2f gets %.2f hits %.2f discards /req]\n",
              allocs, bytes,
              static_cast<double>(pool.gets - pool_before.gets) / n,
              static_cast<double>(pool.hits - pool_before.hits) / n,
              static_cast<double>(pool.discards - pool_before.discards) / n);
  // Same pins as AsyncBatchedServePathStaysWithinAllocBudget.
  EXPECT_LE(allocs, 12.0);
  EXPECT_LE(bytes, 2560.0);
  // And tracing really was live: the sampled requests recorded spans.
  EXPECT_GT(obs::Tracer::Global().recorded(), spans_before);
  obs::Tracer::Global().SetSampleEvery(0);
  master_.StopServing();
}

// ---- wire bytes per request -------------------------------------------------
// The same budget-pinning discipline applied to the data plane: wire
// bytes/frames per request from the master's link counters. In HT the
// single-sample request round-robins between the local slice and the
// worker, so every OTHER request ships one input frame and receives one
// logits frame — the per-request averages below are half a frame each.

struct PerRequestWire {
  double bytes_sent = 0;
  double bytes_recv = 0;
  double frames_sent = 0;
};

TEST_F(ServeAllocTest, HtFanOutWireBytesPerRequestWithinBudget) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighThroughput);
  for (int i = 0; i < 10; ++i) ServeOne();  // settle the round-robin
  const WireStats before = master_.wire_stats();
  const int n = 50;
  for (int i = 0; i < n; ++i) ServeOne();
  const WireStats after = master_.wire_stats();
  PerRequestWire wire;
  wire.bytes_sent = static_cast<double>(after.bytes_sent - before.bytes_sent) / n;
  wire.bytes_recv = static_cast<double>(after.bytes_recv - before.bytes_recv) / n;
  wire.frames_sent =
      static_cast<double>(after.frames_sent - before.frames_sent) / n;
  std::printf("  [fp32 wire: %.0f B sent, %.0f B recv, %.2f frames /req]\n",
              wire.bytes_sent, wire.bytes_recv, wire.frames_sent);
  // A [1,1,28,28] fp32 shard is 3136 B of payload; with framing and the
  // 1-in-2 round-robin the steady state is ~1600 B sent per request.
  EXPECT_GT(wire.bytes_sent, 0.0);
  EXPECT_LE(wire.bytes_sent, 1800.0);
  EXPECT_LE(wire.frames_sent, 0.75);
}

TEST_F(ServeAllocTest, QuantInputHtFanOutWireBytesPerRequestWithinBudget) {
  DeployPaperPlan(/*quant_pipeline=*/false, /*quant_input=*/true);
  master_.SetMode(sim::Mode::kHighThroughput);
  for (int i = 0; i < 10; ++i) ServeOne();
  const WireStats before = master_.wire_stats();
  const int n = 50;
  for (int i = 0; i < n; ++i) ServeOne();
  const WireStats after = master_.wire_stats();
  PerRequestWire wire;
  wire.bytes_sent = static_cast<double>(after.bytes_sent - before.bytes_sent) / n;
  wire.bytes_recv = static_cast<double>(after.bytes_recv - before.bytes_recv) / n;
  wire.frames_sent =
      static_cast<double>(after.frames_sent - before.frames_sent) / n;
  std::printf("  [int8 wire: %.0f B sent, %.0f B recv, %.2f frames /req]\n",
              wire.bytes_sent, wire.bytes_recv, wire.frames_sent);
  // The v5 shard carries the same 784 samples as one int8 byte each plus
  // the scale — the pinned budget is under a third of the fp32 pin above,
  // locking in the 4x payload economy at the budget level.
  EXPECT_GT(wire.bytes_sent, 0.0);
  EXPECT_LE(wire.bytes_sent, 600.0);
  EXPECT_GT(master_.stats().quant_input_frames, 0u);
  // Replies are fp32 logits either way: the economy is send-side only.
  EXPECT_LE(wire.bytes_recv, 256.0);
}

}  // namespace
}  // namespace fluid::dist
