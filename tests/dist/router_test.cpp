#include "dist/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "dist/master.h"
#include "dist/orchestrator.h"
#include "dist/worker.h"
#include "obs/metrics.h"
#include "nn/checkpoint.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

core::Tensor Sample(core::Rng& rng, std::int64_t n = 1) {
  return core::Tensor::UniformRandom({n, 1, 28, 28}, rng, 0, 1);
}

// A partition whose master serves alone: one resident standalone slice,
// no workers. The smallest thing the router can route to.
struct LocalPartition {
  explicit LocalPartition(const slim::FluidNetConfig& cfg,
                          slim::FluidModel& fluid) : master(cfg) {
    master.DeployLocal("solo",
                       fluid.ExtractSubnet(fluid.family().WorkerResident()));
    Plan plan;
    plan.master_standalone = "solo";
    master.SetPlan(plan);
    master.SetMode(sim::Mode::kHighThroughput);
  }
  MasterNode master;
};

// A partition in the bench/CI shape: master plus one worker hosting the
// standalone slice, master itself holding NO local slice — every sample
// crosses the link, so a dead worker makes the partition answer
// kUnavailable (the router's reroute trigger).
struct WorkerPartition {
  WorkerPartition(const slim::FluidNetConfig& cfg, slim::FluidModel& fluid,
                  std::pair<TransportPtr, TransportPtr> link)
      : master(cfg) {
    worker = std::make_unique<WorkerNode>("w", cfg, std::move(link.second));
    worker->Start();
    master.AttachWorker(std::move(link.first));
    nn::Sequential upper =
        fluid.ExtractSubnet(fluid.family().WorkerResident());
    EXPECT_TRUE(master
                    .DeployToWorker("up", ModelBlueprint::Standalone(cfg, 8),
                                    nn::ExtractState(upper), 2000ms)
                    .ok());
    Plan plan;
    plan.worker_standalone = "up";
    master.SetPlan(plan);
    master.SetMode(sim::Mode::kHighThroughput);
  }
  MasterNode master;
  std::unique_ptr<WorkerNode> worker;
};

// ---------------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------------

TEST(HashRingTest, MembershipChangeRemapsOnlyABoundedFractionAndReversibly) {
  HashRing ring(64);
  for (std::size_t id = 0; id < 4; ++id) ring.AddNode(id);

  constexpr std::uint64_t kKeys = 1000;
  std::vector<std::size_t> before(kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) before[k] = ring.NodeFor(k);

  // Every node owns a share of the key space.
  std::map<std::size_t, int> owned;
  for (const std::size_t n : before) ++owned[n];
  EXPECT_EQ(owned.size(), 4u);

  // Adding a node steals keys ONLY for itself, and only ~1/5 of them.
  ring.AddNode(4);
  std::size_t moved = 0;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::size_t now = ring.NodeFor(k);
    if (now != before[k]) {
      EXPECT_EQ(now, 4u) << "key " << k
                         << " moved between two pre-existing nodes";
      ++moved;
    }
  }
  EXPECT_GT(moved, kKeys / 20);  // the new node actually takes load
  EXPECT_LT(moved, (kKeys * 2) / 5);  // nowhere near a rehash-everything

  // Removing it restores the exact prior ownership — the stability the
  // rolling-upgrade story depends on.
  ring.RemoveNode(4);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(ring.NodeFor(k), before[k]);
  }
}

// ---------------------------------------------------------------------------
// Routing policies
// ---------------------------------------------------------------------------

TEST(RouterTest, ConsistentHashPinsAKeyToOnePartitionAndSpreadsTheSpace) {
  slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  LocalPartition p0(cfg, fluid), p1(cfg, fluid), p2(cfg, fluid);
  RequestRouter router;
  router.AddPartition(&p0.master);
  router.AddPartition(&p1.master);
  router.AddPartition(&p2.master);

  // The ring spreads the key space over all three partitions.
  std::map<std::size_t, int> owners;
  for (std::uint64_t k = 0; k < 64; ++k) ++owners[router.PartitionForKey(k)];
  EXPECT_EQ(owners.size(), 3u);

  // Every request with the same key lands on the key's owner — and
  // nowhere else.
  core::Rng rng(7);
  const std::uint64_t key = 11;
  const std::size_t owner = router.PartitionForKey(key);
  SubmitOptions opts;
  opts.timeout = 5000ms;
  std::vector<std::future<core::StatusOr<InferReply>>> futs;
  for (int i = 0; i < 12; ++i) {
    futs.push_back(router.InferAsync(Sample(rng), opts, key));
  }
  for (auto& f : futs) {
    const auto reply = f.get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.routed_reqs, 12);
  EXPECT_EQ(stats.completed_reqs, 12);
  EXPECT_EQ(stats.rerouted_reqs, 0);
  for (const auto& p : stats.partitions) {
    EXPECT_EQ(p.routed, p.id == owner ? 12 : 0);
  }
}

TEST(RouterTest, LeastLoadedFollowsTheLoadProbe) {
  slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  LocalPartition p0(cfg, fluid), p1(cfg, fluid);
  RouterOptions options;
  options.policy = RoutePolicy::kLeastLoaded;
  RequestRouter router(options);
  router.AddPartition(&p0.master);
  router.AddPartition(&p1.master);

  // Probe says p0 is nearly full and missing deadlines, p1 is idle:
  // every dispatch must pick p1.
  router.SetLoadProbeForTesting([](std::size_t id) {
    LoadSnapshot s;
    s.serving = true;
    s.pool_occupancy = id == 0 ? 0.9 : 0.1;
    s.miss_rate = id == 0 ? 0.2 : 0.0;
    return s;
  });
  core::Rng rng(8);
  for (int i = 0; i < 6; ++i) {
    const auto reply = router.Infer(Sample(rng), 5000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  EXPECT_EQ(router.stats().partitions[1].routed, 6);

  // Flip the skew: the router follows without any reconfiguration.
  router.SetLoadProbeForTesting([](std::size_t id) {
    LoadSnapshot s;
    s.serving = true;
    s.pool_occupancy = id == 0 ? 0.1 : 0.9;
    return s;
  });
  for (int i = 0; i < 6; ++i) {
    const auto reply = router.Infer(Sample(rng), 5000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.partitions[0].routed, 6);
  EXPECT_EQ(stats.partitions[1].routed, 6);
  EXPECT_EQ(stats.failed_reqs, 0);
}

TEST(RouterTest, DrainingPartitionDivertsNewRequestsToSiblings) {
  slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  LocalPartition p0(cfg, fluid), p1(cfg, fluid);
  RequestRouter router;
  router.AddPartition(&p0.master);
  router.AddPartition(&p1.master);

  const std::uint64_t key = 3;
  const std::size_t owner = router.PartitionForKey(key);
  const std::size_t sibling = 1 - owner;
  router.SetDraining(owner, true);

  core::Rng rng(9);
  SubmitOptions opts;
  opts.timeout = 5000ms;
  for (int i = 0; i < 5; ++i) {
    const auto reply = router.InferAsync(Sample(rng), opts, key).get();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.partitions[owner].routed, 0);
  EXPECT_EQ(stats.partitions[sibling].routed, 5);
  EXPECT_EQ(stats.partitions[sibling].rerouted_in, 5);
  EXPECT_EQ(stats.rerouted_reqs, 5);

  // Undrained, the key goes home again.
  router.SetDraining(owner, false);
  const auto reply = router.InferAsync(Sample(rng), opts, key).get();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(router.stats().partitions[owner].routed, 1);
}

TEST(RouterTest, AdmissionFullPartitionRedirectsAtSubmitTime) {
  slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  // p0's only server sits behind a slow emulated link and its pool admits
  // ONE request: while that request is in flight p0's admission is
  // closed, so a second request keyed to p0 must divert to p1 instead of
  // queueing behind the link.
  WorkerPartition p0(cfg, fluid, MakeEmulatedLinkPair(150ms, 1e12));
  LocalPartition p1(cfg, fluid);
  BatchOptions serving;
  serving.max_active_reqs = 1;
  p0.master.StartServing(serving);

  RequestRouter router;
  router.AddPartition(&p0.master);
  router.AddPartition(&p1.master);
  std::uint64_t key = 0;
  while (router.PartitionForKey(key) != 0) ++key;

  core::Rng rng(10);
  SubmitOptions opts;
  opts.timeout = 5000ms;
  auto slow = router.InferAsync(Sample(rng), opts, key);
  // p0 now holds its one admitted request (the link makes it slow); the
  // next submit with the same key must go to p1, counted as a reroute.
  auto diverted = router.InferAsync(Sample(rng), opts, key);
  const auto fast = diverted.get();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  {
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.partitions[1].routed, 1);
    EXPECT_EQ(stats.partitions[1].rerouted_in, 1);
    EXPECT_GE(stats.rerouted_reqs, 1);
  }
  const auto first = slow.get();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(router.stats().completed_reqs, 2);
  p0.worker->Stop();
}

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

TEST(RouterTest, WorkerCrashMidStreamNeverLosesOrDoubleResolvesAFuture) {
  slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  WorkerPartition p0(cfg, fluid, MakeInMemoryPair());
  LocalPartition p1(cfg, fluid);
  RequestRouter router;
  router.AddPartition(&p0.master);
  router.AddPartition(&p1.master);
  std::uint64_t key = 0;
  while (router.PartitionForKey(key) != 0) ++key;

  // Multiple client threads stream requests keyed to p0 while its only
  // worker dies mid-stream. Every future must resolve OK — the failed
  // partition's requests reroute to p1 with their remaining budget.
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      core::Rng rng(100 + c);
      SubmitOptions opts;
      opts.timeout = 10000ms;
      for (int i = 0; i < kPerClient; ++i) {
        auto reply = router.InferAsync(Sample(rng), opts, key).get();
        EXPECT_TRUE(reply.ok()) << reply.status().ToString();
        if (reply.ok()) ++ok_count;
      }
    });
  }
  // Crash once the stream is provably mid-flight: a few requests done,
  // most still to come — so the kill lands between requests, not after
  // the last one.
  while (ok_count.load() < 5) std::this_thread::sleep_for(1ms);
  p0.worker->Crash();
  for (auto& t : clients) t.join();

  EXPECT_EQ(ok_count, kClients * kPerClient);
  const RouterStats stats = router.stats();
  EXPECT_EQ(stats.completed_reqs, kClients * kPerClient);
  EXPECT_EQ(stats.failed_reqs, 0);
  EXPECT_GT(stats.rerouted_reqs, 0) << "the crash never forced a reroute";
  EXPECT_GT(stats.partitions[1].routed, 0);
}

TEST(RouterTest, NoLivePartitionFailsFastWithUnavailable) {
  RequestRouter router;
  core::Rng rng(11);
  const auto reply = router.Infer(Sample(rng), 200ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), core::StatusCode::kUnavailable);
  EXPECT_EQ(router.stats().failed_reqs, 1);
}

// ---------------------------------------------------------------------------
// Deployment + fleet view
// ---------------------------------------------------------------------------

TEST(RouterTest, RollingDeployReplicatesToEveryPartitionAndKeepsServing) {
  slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  WorkerPartition p0(cfg, fluid, MakeInMemoryPair());
  WorkerPartition p1(cfg, fluid, MakeInMemoryPair());
  RequestRouter router;
  router.AddPartition(&p0.master);
  router.AddPartition(&p1.master);

  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  const auto st = router.RollingDeploy("up2", ModelBlueprint::Standalone(cfg, 8),
                                       nn::ExtractState(upper));
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (WorkerPartition* p : {&p0, &p1}) {
    const auto names = p->worker->DeploymentNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "up2"), names.end());
    EXPECT_FALSE(router.draining(p == &p0 ? 0 : 1));
  }

  // The fleet still serves, and the fleet orchestrator sees both
  // partitions with aggregate telemetry.
  core::Rng rng(12);
  ASSERT_TRUE(router.Infer(Sample(rng), 5000ms).ok());
  OrchestratorConfig oc;
  oc.ha_capacity = 60.0;
  oc.ht_capacity = 100.0;
  FleetOrchestrator fleet(router, oc);
  const auto report = fleet.Tick(50.0);
  EXPECT_EQ(report.partitions.size(), 2u);
  EXPECT_EQ(report.serving_partitions, 2u);
  EXPECT_EQ(report.alive_workers, 2u);
  EXPECT_GT(report.snapshot.wire.frames_sent, 0);
  EXPECT_GT(report.snapshot.sched.completed, 0);
  EXPECT_GT(report.snapshot.pool.gets, 0u);
  EXPECT_GT(report.snapshot.router.routed_reqs, 0);
  // The tick also published the rolled-up snapshot as fluid_fleet_*
  // series in the global registry.
  const std::string dump = obs::MetricsRegistry::Global().DumpMetrics();
  EXPECT_NE(dump.find("fluid_fleet_wire_frames_sent"), std::string::npos);
  EXPECT_NE(dump.find("fluid_fleet_sched_completed"), std::string::npos);
  p0.worker->Stop();
  p1.worker->Stop();
}

// The single-master wire-compat gate: one partition behind the router
// must put byte-for-byte the same traffic on the wire as the same fleet
// driven directly — the router adds no frames, no fields, no versions.
TEST(RouterTest, SingleMasterRoutedFleetIsWireIdenticalToDirect) {
  slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  WorkerPartition direct(cfg, fluid, MakeInMemoryPair());
  WorkerPartition routed(cfg, fluid, MakeInMemoryPair());
  BatchOptions serving;  // identical serving config on both
  direct.master.StartServing(serving);
  routed.master.StartServing(serving);
  RequestRouter router;
  router.AddPartition(&routed.master);

  core::Rng rng_a(13), rng_b(13);  // identical request streams
  for (int i = 0; i < 6; ++i) {
    const core::Tensor x = Sample(rng_a);
    const auto a = direct.master.Infer(x, 5000ms);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    const auto b = router.Infer(Sample(rng_b), 5000ms);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
  }
  const WireStats da = direct.master.wire_stats();
  const WireStats db = router.wire_stats();
  EXPECT_EQ(da.bytes_sent, db.bytes_sent);
  EXPECT_EQ(da.bytes_recv, db.bytes_recv);
  EXPECT_EQ(da.frames_sent, db.frames_sent);
  EXPECT_EQ(da.frames_recv, db.frames_recv);
  direct.worker->Stop();
  routed.worker->Stop();
}

}  // namespace
}  // namespace fluid::dist
