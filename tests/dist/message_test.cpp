#include "dist/message.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/serialize.h"

namespace fluid::dist {
namespace {

TEST(MessageTest, RoundTripsTensorPayload) {
  core::Rng rng(1);
  const core::Tensor t = core::Tensor::UniformRandom({2, 3, 4}, rng, -1, 1);
  const Message msg = Message::WithTensor(MsgType::kInfer, 42, "stage1", t);

  const auto bytes = EncodeMessage(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));

  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_EQ(out.type, MsgType::kInfer);
  EXPECT_EQ(out.seq, 42);
  EXPECT_EQ(out.tag, "stage1");
  ASSERT_EQ(out.payload.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(out.payload.at(i), t.at(i));
  }
}

TEST(MessageTest, RoundTripsHeaderOnly) {
  const Message msg = Message::HeaderOnly(MsgType::kHeartbeat, 7);
  const auto bytes = EncodeMessage(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_EQ(out.type, MsgType::kHeartbeat);
  EXPECT_EQ(out.seq, 7);
  EXPECT_TRUE(out.tag.empty());
  EXPECT_FALSE(out.has_payload());
}

TEST(MessageTest, RejectsBadMagic) {
  auto bytes = EncodeMessage(Message::HeaderOnly(MsgType::kAck, 1));
  bytes[0] ^= 0xFF;
  Message out;
  const auto st = DecodeMessage(bytes, out);
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
}

TEST(MessageTest, RejectsTruncatedFrame) {
  core::Rng rng(2);
  const auto bytes = EncodeMessage(Message::WithTensor(
      MsgType::kResult, 3, "x", core::Tensor::UniformRandom({8}, rng, 0, 1)));
  for (const std::size_t cut : {std::size_t{3}, std::size_t{9},
                                bytes.size() - 1}) {
    Message out;
    const auto st = DecodeMessage(
        std::span<const std::uint8_t>(bytes.data(), cut), out);
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
  }
}

TEST(MessageTest, RejectsUnknownType) {
  auto bytes = EncodeMessage(Message::HeaderOnly(MsgType::kAck, 1));
  bytes[9] = 0x7F;  // type byte: magic(4) + len(4) + version(1)
  Message out;
  const auto st = DecodeMessage(bytes, out);
  EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
}

TEST(MessageTest, MsgTypeNamesAreStable) {
  EXPECT_EQ(MsgTypeName(MsgType::kInfer), "INFER");
  EXPECT_EQ(MsgTypeName(MsgType::kHeartbeat), "HEARTBEAT");
}

TEST(MessageTest, BatchHeaderRoundTripsAndMirrorsThePayload) {
  core::Rng rng(3);
  const Message msg = Message::WithBatch(
      MsgType::kInfer, 11, "slice",
      core::Tensor::UniformRandom({5, 1, 28, 28}, rng, 0, 1));
  EXPECT_EQ(msg.batch, 5);
  const auto bytes = EncodeMessage(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_EQ(out.batch, 5);
  EXPECT_EQ(out.seq, 11);
  EXPECT_EQ(out.payload.shape(), msg.payload.shape());
}

TEST(MessageTest, DecodesVersion1FramesWithoutABatchField) {
  // Hand-build a v1 body (no [i64 batch] between seq and tag) and check it
  // still decodes, with batch defaulting to 0 — wire compat with peers
  // running the pre-batching codec.
  core::ByteWriter body;
  body.WriteU8(1);  // version 1
  body.WriteU8(static_cast<std::uint8_t>(MsgType::kAck));
  body.WriteI64(21);
  body.WriteString("ok");
  body.WriteU8(0);  // no tensor
  core::ByteWriter frame;
  frame.WriteU32(kFrameMagic);
  frame.WriteU32(static_cast<std::uint32_t>(body.size()));
  auto bytes = frame.TakeBuffer();
  bytes.insert(bytes.end(), body.buffer().begin(), body.buffer().end());

  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_EQ(out.type, MsgType::kAck);
  EXPECT_EQ(out.seq, 21);
  EXPECT_EQ(out.batch, 0);
  EXPECT_EQ(out.tag, "ok");
}

}  // namespace
}  // namespace fluid::dist
