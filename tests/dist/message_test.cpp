#include "dist/message.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/serialize.h"

namespace fluid::dist {
namespace {

TEST(MessageTest, RoundTripsTensorPayload) {
  core::Rng rng(1);
  const core::Tensor t = core::Tensor::UniformRandom({2, 3, 4}, rng, -1, 1);
  const Message msg = Message::WithTensor(MsgType::kInfer, 42, "stage1", t);

  const auto bytes = EncodeMessage(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));

  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_EQ(out.type, MsgType::kInfer);
  EXPECT_EQ(out.seq, 42);
  EXPECT_EQ(out.tag, "stage1");
  ASSERT_EQ(out.payload.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(out.payload.at(i), t.at(i));
  }
}

TEST(MessageTest, RoundTripsHeaderOnly) {
  const Message msg = Message::HeaderOnly(MsgType::kHeartbeat, 7);
  const auto bytes = EncodeMessage(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_EQ(out.type, MsgType::kHeartbeat);
  EXPECT_EQ(out.seq, 7);
  EXPECT_TRUE(out.tag.empty());
  EXPECT_FALSE(out.has_payload());
}

TEST(MessageTest, RejectsBadMagic) {
  auto bytes = EncodeMessage(Message::HeaderOnly(MsgType::kAck, 1));
  bytes[0] ^= 0xFF;
  Message out;
  const auto st = DecodeMessage(bytes, out);
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
}

TEST(MessageTest, RejectsTruncatedFrame) {
  core::Rng rng(2);
  const auto bytes = EncodeMessage(Message::WithTensor(
      MsgType::kResult, 3, "x", core::Tensor::UniformRandom({8}, rng, 0, 1)));
  for (const std::size_t cut : {std::size_t{3}, std::size_t{9},
                                bytes.size() - 1}) {
    Message out;
    const auto st = DecodeMessage(
        std::span<const std::uint8_t>(bytes.data(), cut), out);
    EXPECT_FALSE(st.ok()) << "cut=" << cut;
  }
}

TEST(MessageTest, RejectsUnknownType) {
  auto bytes = EncodeMessage(Message::HeaderOnly(MsgType::kAck, 1));
  bytes[9] = 0x7F;  // type byte: magic(4) + len(4) + version(1)
  Message out;
  const auto st = DecodeMessage(bytes, out);
  EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
}

TEST(MessageTest, MsgTypeNamesAreStable) {
  EXPECT_EQ(MsgTypeName(MsgType::kInfer), "INFER");
  EXPECT_EQ(MsgTypeName(MsgType::kHeartbeat), "HEARTBEAT");
}

TEST(MessageTest, BatchHeaderRoundTripsAndMirrorsThePayload) {
  core::Rng rng(3);
  const Message msg = Message::WithBatch(
      MsgType::kInfer, 11, "slice",
      core::Tensor::UniformRandom({5, 1, 28, 28}, rng, 0, 1));
  EXPECT_EQ(msg.batch, 5);
  const auto bytes = EncodeMessage(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_EQ(out.batch, 5);
  EXPECT_EQ(out.seq, 11);
  EXPECT_EQ(out.payload.shape(), msg.payload.shape());
}

TEST(MessageTest, DecodesVersion1FramesWithoutABatchField) {
  // Hand-build a v1 body (no [i64 batch] between seq and tag) and check it
  // still decodes, with batch defaulting to 0 — wire compat with peers
  // running the pre-batching codec.
  core::ByteWriter body;
  body.WriteU8(1);  // version 1
  body.WriteU8(static_cast<std::uint8_t>(MsgType::kAck));
  body.WriteI64(21);
  body.WriteString("ok");
  body.WriteU8(0);  // no tensor
  core::ByteWriter frame;
  frame.WriteU32(kFrameMagic);
  frame.WriteU32(static_cast<std::uint32_t>(body.size()));
  auto bytes = frame.TakeBuffer();
  bytes.insert(bytes.end(), body.buffer().begin(), body.buffer().end());

  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_EQ(out.type, MsgType::kAck);
  EXPECT_EQ(out.seq, 21);
  EXPECT_EQ(out.batch, 0);
  EXPECT_EQ(out.tag, "ok");
}

TEST(MessageTest, SloBlockRoundTripsOnInferFrames) {
  core::Rng rng(4);
  Message msg = Message::WithBatch(
      MsgType::kInfer, 17, "chunk",
      core::Tensor::UniformRandom({4, 1, 28, 28}, rng, 0, 1));
  msg.SetSlo(/*cls=*/1, /*remaining_ms=*/730);
  ASSERT_TRUE(msg.has_slo());

  const auto bytes = EncodeMessage(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
  EXPECT_EQ(bytes[8], 4) << "an SLO-carrying frame must encode as v4";

  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_TRUE(out.has_slo());
  EXPECT_EQ(out.priority, 1);
  EXPECT_EQ(out.slo_ms, 730);
  EXPECT_EQ(out.batch, 4);
  EXPECT_EQ(out.payload.shape(), msg.payload.shape());
}

TEST(MessageTest, SloBlockRoundTripsWithQuantizedPayload) {
  // The HA cut-activation frame of the mixed-SLO path: int8 payload (v3
  // block) AND an SLO block — both must survive one frame.
  core::Rng rng(5);
  const core::Tensor t = core::Tensor::UniformRandom({3, 8}, rng, -1, 1);
  Message msg = Message::WithQuantBatch(MsgType::kInfer, 23, "cut",
                                        quant::QuantizeTensor(t));
  msg.SetSlo(/*cls=*/0, /*remaining_ms=*/42);

  const auto bytes = EncodeMessage(msg);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
  EXPECT_EQ(bytes[8], 4);

  Message out;
  ASSERT_TRUE(DecodeMessage(bytes, out).ok());
  EXPECT_TRUE(out.has_qpayload());
  EXPECT_EQ(out.qpayload.shape, msg.qpayload.shape);
  EXPECT_EQ(out.qpayload.data, msg.qpayload.data);
  EXPECT_TRUE(out.has_slo());
  EXPECT_EQ(out.priority, 0);
  EXPECT_EQ(out.slo_ms, 42);
}

TEST(MessageTest, FramesWithoutAnSloStayByteIdenticalToV2) {
  // The v4 discipline mirrors v3's: no SLO attached → the encoder emits
  // the old version, so peers that never learned v4 interoperate
  // untouched. Clearing the SLO must restore the exact v2 bytes.
  core::Rng rng(6);
  Message msg = Message::WithBatch(
      MsgType::kInfer, 9, "plain",
      core::Tensor::UniformRandom({2, 4}, rng, 0, 1));
  const auto v2_bytes = EncodeMessage(msg);
  EXPECT_EQ(v2_bytes[8], 2);

  msg.SetSlo(2, 100);
  const auto v4_bytes = EncodeMessage(msg);
  EXPECT_EQ(v4_bytes[8], 4);
  EXPECT_GT(v4_bytes.size(), v2_bytes.size());

  msg.slo_ms = -1;  // detach the SLO again
  EXPECT_EQ(EncodeMessage(msg), v2_bytes);
}

TEST(MessageTest, SetSloClampsNegativeRemainingBudgetToZero) {
  // A request already past its deadline still ships a valid SLO block
  // ("0 ms left"), never a negative budget the receiver must reject.
  Message msg = Message::HeaderOnly(MsgType::kInfer, 1);
  msg.SetSlo(1, -250);
  EXPECT_TRUE(msg.has_slo());
  EXPECT_EQ(msg.slo_ms, 0);
}

TEST(MessageTest, NegativeSloOnTheWireIsDataLoss) {
  // Hand-build a v4 body whose slo_ms is negative: the decoder must
  // refuse it as corrupt rather than admit an impossible deadline into
  // the scheduler's accounting.
  core::ByteWriter body;
  body.WriteU8(4);  // version 4
  body.WriteU8(static_cast<std::uint8_t>(MsgType::kInfer));
  body.WriteI64(31);  // seq
  body.WriteI64(2);   // batch
  body.WriteString("bad");
  body.WriteU8(0);  // no tensor
  body.WriteU8(0);  // no qtensor
  body.WriteU8(1);  // priority
  body.WriteI64(-5);
  core::ByteWriter frame;
  frame.WriteU32(kFrameMagic);
  frame.WriteU32(static_cast<std::uint32_t>(body.size()));
  auto bytes = frame.TakeBuffer();
  bytes.insert(bytes.end(), body.buffer().begin(), body.buffer().end());

  Message out;
  const auto st = DecodeMessage(bytes, out);
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
}

TEST(MessageTest, TruncatedSloBlockIsDataLoss) {
  core::Rng rng(7);
  Message msg = Message::WithBatch(
      MsgType::kInfer, 13, "cutoff",
      core::Tensor::UniformRandom({2, 4}, rng, 0, 1));
  msg.SetSlo(0, 55);
  const auto bytes = EncodeMessage(msg);
  // Cut inside the trailing [u8 priority][i64 slo_ms] block.
  for (std::size_t drop = 1; drop <= 9; ++drop) {
    Message out;
    const auto st = DecodeMessage(
        std::span<const std::uint8_t>(bytes.data(), bytes.size() - drop), out);
    EXPECT_FALSE(st.ok()) << "drop=" << drop;
  }
}

}  // namespace
}  // namespace fluid::dist
