#include "dist/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "dist/tcp_transport.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

core::Tensor SomeTensor(std::uint64_t seed) {
  core::Rng rng(seed);
  return core::Tensor::UniformRandom({2, 3, 4}, rng, -1, 1);
}

TEST(InMemoryTransportTest, RoundTripsBothDirections) {
  auto [a, b] = MakeInMemoryPair();
  const core::Tensor t = SomeTensor(1);
  ASSERT_TRUE(a->Send(Message::WithTensor(MsgType::kInfer, 5, "m", t)).ok());
  ASSERT_TRUE(b->Send(Message::HeaderOnly(MsgType::kAck, 5)).ok());

  Message got;
  ASSERT_TRUE(b->Recv(got, 100ms).ok());
  EXPECT_EQ(got.type, MsgType::kInfer);
  EXPECT_EQ(got.seq, 5);
  EXPECT_EQ(got.tag, "m");
  EXPECT_EQ(core::MaxAbsDiff(got.payload, t), 0.0F);

  ASSERT_TRUE(a->Recv(got, 100ms).ok());
  EXPECT_EQ(got.type, MsgType::kAck);
}

TEST(EmulatedLinkTest, FramesPayLatencyBeforeDelivery) {
  auto [a, b] = MakeEmulatedLinkPair(std::chrono::duration<double>(0.030),
                                     /*bandwidth_bytes_per_s=*/0);
  ASSERT_TRUE(a->Send(Message::HeaderOnly(MsgType::kAck, 1)).ok());

  // Not deliverable before the 30 ms link latency has elapsed...
  Message got;
  const auto early = b->Recv(got, 5ms);
  EXPECT_EQ(early.code(), core::StatusCode::kDeadlineExceeded);
  // ...but arrives intact once it has (generous budget for slow CI).
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(b->Recv(got, 2000ms).ok());
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, 10ms);  // most of the latency is paid inside Recv
  EXPECT_EQ(got.type, MsgType::kAck);
  EXPECT_EQ(got.seq, 1);
}

TEST(EmulatedLinkTest, FramesQueueBehindEachOtherAndKeepOrder) {
  // Serial link: the second frame's payload transfers after the first's,
  // and delivery order matches send order.
  auto [a, b] = MakeEmulatedLinkPair(std::chrono::duration<double>(0.005),
                                     /*bandwidth_bytes_per_s=*/1e6);
  const core::Tensor t = SomeTensor(3);
  ASSERT_TRUE(a->Send(Message::WithTensor(MsgType::kInfer, 1, "x", t)).ok());
  ASSERT_TRUE(a->Send(Message::WithTensor(MsgType::kInfer, 2, "y", t)).ok());
  Message got;
  ASSERT_TRUE(b->Recv(got, 2000ms).ok());
  EXPECT_EQ(got.seq, 1);
  ASSERT_TRUE(b->Recv(got, 2000ms).ok());
  EXPECT_EQ(got.seq, 2);
}

TEST(EmulatedLinkTest, ZeroCostLinkBehavesLikeThePlainPair) {
  auto [a, b] = MakeEmulatedLinkPair(std::chrono::duration<double>(0.0), 0);
  ASSERT_TRUE(a->Send(Message::HeaderOnly(MsgType::kHeartbeat, 9)).ok());
  Message got;
  ASSERT_TRUE(b->Recv(got, 100ms).ok());
  EXPECT_EQ(got.type, MsgType::kHeartbeat);
}

TEST(InMemoryTransportTest, RecvTimesOutOnIdleLink) {
  auto [a, b] = MakeInMemoryPair();
  Message got;
  const auto st = a->Recv(got, 10ms);
  EXPECT_EQ(st.code(), core::StatusCode::kDeadlineExceeded);
  // The link still works afterwards.
  ASSERT_TRUE(b->Send(Message::HeaderOnly(MsgType::kHeartbeat, 1)).ok());
  EXPECT_TRUE(a->Recv(got, 100ms).ok());
}

TEST(InMemoryTransportTest, PeerCloseFailsSendAndRecvWithoutThrowing) {
  auto [a, b] = MakeInMemoryPair();
  b->Close();
  EXPECT_EQ(a->Send(Message::HeaderOnly(MsgType::kAck, 1)).code(),
            core::StatusCode::kUnavailable);
  Message got;
  EXPECT_EQ(a->Recv(got, 10ms).code(), core::StatusCode::kUnavailable);
}

TEST(InMemoryTransportTest, BufferedFramesDeliverAfterPeerClose) {
  auto [a, b] = MakeInMemoryPair();
  ASSERT_TRUE(b->Send(Message::HeaderOnly(MsgType::kResult, 9, "last")).ok());
  b->Close();
  Message got;
  ASSERT_TRUE(a->Recv(got, 100ms).ok());
  EXPECT_EQ(got.seq, 9);
  EXPECT_EQ(a->Recv(got, 10ms).code(), core::StatusCode::kUnavailable);
}

TEST(InMemoryTransportTest, CloseUnblocksAConcurrentRecv) {
  auto [a, b] = MakeInMemoryPair();
  std::thread closer([&b] {
    std::this_thread::sleep_for(20ms);
    b->Close();
  });
  Message got;
  const auto st = a->Recv(got, 5s);
  EXPECT_EQ(st.code(), core::StatusCode::kUnavailable);
  closer.join();
}

// ---- TCP ------------------------------------------------------------------

struct TcpPair {
  TransportPtr client;
  TransportPtr server;
};

TcpPair MakeTcpPair() {
  TcpListener listener(0);
  auto client = TcpConnect("127.0.0.1", listener.port(), 2000ms);
  auto server = listener.Accept(2000ms);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return {std::move(*client), std::move(*server)};
}

// A *raw* client socket (not a Transport) accepted by the listener — the
// hostile-peer harness for the corruption tests.
struct RawPeer {
  int fd = -1;
  TransportPtr server;
  RawPeer() = default;
  RawPeer(RawPeer&& other) noexcept
      : fd(std::exchange(other.fd, -1)), server(std::move(other.server)) {}
  ~RawPeer() {
    if (fd >= 0) ::close(fd);
  }
};

RawPeer ConnectRaw(TcpListener& listener) {
  RawPeer peer;
  peer.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(peer.fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(peer.fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  auto server = listener.Accept(2000ms);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  if (server.ok()) peer.server = std::move(*server);
  return peer;
}

TEST(TcpTransportTest, RoundTripsTensorFrames) {
  auto pair = MakeTcpPair();
  const core::Tensor t = SomeTensor(2);
  ASSERT_TRUE(
      pair.client->Send(Message::WithTensor(MsgType::kResult, 3, "r", t)).ok());
  Message got;
  ASSERT_TRUE(pair.server->Recv(got, 2000ms).ok());
  EXPECT_EQ(got.type, MsgType::kResult);
  EXPECT_EQ(core::MaxAbsDiff(got.payload, t), 0.0F);

  ASSERT_TRUE(pair.server->Send(Message::HeaderOnly(MsgType::kAck, 3)).ok());
  ASSERT_TRUE(pair.client->Recv(got, 2000ms).ok());
  EXPECT_EQ(got.type, MsgType::kAck);
}

TEST(TcpTransportTest, ManyFramesInOneBurstStayFrameAligned) {
  auto pair = MakeTcpPair();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pair.client
                    ->Send(Message::HeaderOnly(MsgType::kHeartbeat, i,
                                               "tag" + std::to_string(i)))
                    .ok());
  }
  for (int i = 0; i < 50; ++i) {
    Message got;
    ASSERT_TRUE(pair.server->Recv(got, 2000ms).ok()) << "frame " << i;
    EXPECT_EQ(got.seq, i);
    EXPECT_EQ(got.tag, "tag" + std::to_string(i));
  }
}

TEST(TcpTransportTest, GarbageBytesReturnDataLossNotThrow) {
  TcpListener listener(0);
  RawPeer peer = ConnectRaw(listener);

  const char garbage[] = "this is not a FLMS frame at all ...............";
  ASSERT_GT(::send(peer.fd, garbage, sizeof(garbage), 0), 0);

  Message got;
  const auto st = peer.server->Recv(got, 2000ms);
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
  EXPECT_TRUE(peer.server->closed());
}

TEST(TcpTransportTest, GarbageBurstWithPlausibleLengthIsStillDataLoss) {
  // Regression: >= 8 garbage bytes arriving in one recv used to skip the
  // early magic check; if the garbage-derived length field was small the
  // reader stalled forever in kDeadlineExceeded instead of kDataLoss.
  TcpListener listener(0);
  RawPeer peer = ConnectRaw(listener);

  std::uint8_t burst[16];
  std::memset(burst, 0xAB, sizeof(burst));   // bad magic
  const std::uint32_t small_len = 4;         // innocent-looking length
  std::memcpy(burst + 4, &small_len, 4);
  ASSERT_EQ(::send(peer.fd, burst, sizeof(burst), 0), 16);

  Message got;
  const auto st = peer.server->Recv(got, 2000ms);
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
}

TEST(TcpTransportTest, TruncatedFrameIsDataLossOnPeerDeath) {
  TcpListener listener(0);
  RawPeer peer = ConnectRaw(listener);

  // First half of a legitimate frame, then the peer "loses power".
  const auto bytes = EncodeMessage(
      Message::WithTensor(MsgType::kInfer, 1, "x", SomeTensor(3)));
  ASSERT_GT(::send(peer.fd, bytes.data(), bytes.size() / 2, 0), 0);
  ::close(peer.fd);
  peer.fd = -1;

  Message got;
  const auto st = peer.server->Recv(got, 2000ms);
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
}

TEST(TcpTransportTest, AbsurdFrameLengthIsDataLoss) {
  TcpListener listener(0);
  RawPeer peer = ConnectRaw(listener);

  // Valid magic, hostile length.
  std::uint8_t hdr[8];
  const std::uint32_t len = 0xFFFFFFFFu;
  std::memcpy(hdr, &kFrameMagic, 4);
  std::memcpy(hdr + 4, &len, 4);
  ASSERT_EQ(::send(peer.fd, hdr, sizeof(hdr), 0), 8);

  Message got;
  const auto st = peer.server->Recv(got, 2000ms);
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
}

TEST(TcpTransportTest, OversizedFrameIsRejectedBySenderWithoutClosing) {
  auto pair = MakeTcpPair();
  // A payload whose encoded frame exceeds the wire limit must fail fast
  // on the sender and leave the connection healthy.
  core::Tensor huge({(64 << 20) / 4 + 1024});
  const auto st =
      pair.client->Send(Message::WithTensor(MsgType::kDeploy, 1, "big",
                                            std::move(huge)));
  EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
  EXPECT_FALSE(pair.client->closed());
  ASSERT_TRUE(pair.client->Send(Message::HeaderOnly(MsgType::kAck, 2)).ok());
  Message got;
  ASSERT_TRUE(pair.server->Recv(got, 2000ms).ok());
  EXPECT_EQ(got.seq, 2);
}

// ---- SendBatch / vectored wire path ---------------------------------------

TEST(InMemoryTransportTest, SendBatchDeliversInOrderAndCountsOneBatchedSend) {
  auto [a, b] = MakeInMemoryPair();
  const core::Tensor t = SomeTensor(7);
  const Message batch[] = {
      Message::WithBatch(MsgType::kInfer, 1, "x", t.Clone()),
      Message::HeaderOnly(MsgType::kHeartbeat, 2),
      Message::WithBatch(MsgType::kInfer, 3, "y", t.Clone()),
  };
  std::int64_t wire_bytes = 0;
  for (const Message& m : batch) wire_bytes += EncodedSize(m);
  ASSERT_TRUE(a->SendBatch(batch).ok());
  for (std::int64_t seq = 1; seq <= 3; ++seq) {
    Message got;
    ASSERT_TRUE(b->Recv(got, 1000ms).ok()) << "seq " << seq;
    EXPECT_EQ(got.seq, seq);
  }
  const WireStats sent = a->wire_stats();
  EXPECT_EQ(sent.frames_sent, 3);
  EXPECT_EQ(sent.batched_sends, 1);
  EXPECT_EQ(sent.bytes_sent, wire_bytes);
  const WireStats recvd = b->wire_stats();
  EXPECT_EQ(recvd.frames_recv, 3);
  EXPECT_EQ(recvd.bytes_recv, wire_bytes);
}

TEST(EmulatedLinkTest, SendBatchPaysLatencyOncePerBatch) {
  // A batch is one link transaction: a single latency head start, then
  // the frames serialize back to back. All three must arrive little after
  // one latency, not one per frame.
  auto [a, b] = MakeEmulatedLinkPair(std::chrono::duration<double>(0.050),
                                     /*bandwidth_bytes_per_s=*/0);
  const Message batch[] = {
      Message::HeaderOnly(MsgType::kAck, 1),
      Message::HeaderOnly(MsgType::kAck, 2),
      Message::HeaderOnly(MsgType::kAck, 3),
  };
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a->SendBatch(batch).ok());
  Message got;
  for (std::int64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(b->Recv(got, 2000ms).ok());
    EXPECT_EQ(got.seq, seq);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 40ms);   // the one head start is still paid
  EXPECT_LT(elapsed, 120ms);  // but not once per frame
}

TEST(TcpTransportTest, SendBatchRoundTripsMixedVersionsInOneWritev) {
  auto pair = MakeTcpPair();
  core::Rng rng(42);
  // Big enough that the fp32 and int8 bulks stream straight into pooled
  // storage on the receiver (> the staged-decode cutoff), plus a tiny
  // header-only frame riding in the same writev.
  core::Tensor big = core::Tensor::UniformRandom({4, 16, 14, 14}, rng, -1, 1);
  core::Tensor input = core::Tensor::UniformRandom({4, 1, 28, 28}, rng, 0, 1);
  const quant::QuantizedTensor q = quant::QuantizeTensor(input);
  const Message batch[] = {
      Message::WithBatch(MsgType::kInfer, 1, "fp32", big.Clone()),
      Message::HeaderOnly(MsgType::kHeartbeat, 2),
      Message::WithQuantInput(MsgType::kInfer, 3, "upper50", q),
  };
  std::int64_t wire_bytes = 0;
  for (const Message& m : batch) wire_bytes += EncodedSize(m);
  ASSERT_TRUE(pair.client->SendBatch(batch).ok());

  Message got;
  ASSERT_TRUE(pair.server->Recv(got, 2000ms).ok());
  EXPECT_EQ(got.seq, 1);
  EXPECT_EQ(core::MaxAbsDiff(got.payload, big), 0.0F);
  ASSERT_TRUE(pair.server->Recv(got, 2000ms).ok());
  EXPECT_EQ(got.seq, 2);
  EXPECT_EQ(got.type, MsgType::kHeartbeat);
  ASSERT_TRUE(pair.server->Recv(got, 2000ms).ok());
  EXPECT_EQ(got.seq, 3);
  ASSERT_TRUE(got.has_qpayload());
  EXPECT_TRUE(got.input_quant);
  EXPECT_EQ(got.qpayload.scale, q.scale);
  EXPECT_EQ(got.qpayload.data, q.data);

  const WireStats sent = pair.client->wire_stats();
  EXPECT_EQ(sent.frames_sent, 3);
  EXPECT_EQ(sent.batched_sends, 1);
  EXPECT_EQ(sent.bytes_sent, wire_bytes);
  const WireStats recvd = pair.server->wire_stats();
  EXPECT_EQ(recvd.frames_recv, 3);
  EXPECT_EQ(recvd.bytes_recv, wire_bytes);
}

TEST(TcpTransportTest, SingleFrameSendDoesNotCountAsBatched) {
  auto pair = MakeTcpPair();
  ASSERT_TRUE(pair.client->Send(Message::HeaderOnly(MsgType::kAck, 1)).ok());
  Message got;
  ASSERT_TRUE(pair.server->Recv(got, 2000ms).ok());
  EXPECT_EQ(pair.client->wire_stats().frames_sent, 1);
  EXPECT_EQ(pair.client->wire_stats().batched_sends, 0);
}

TEST(TcpTransportTest, LargeFrameDribbledBytewiseStillDecodes) {
  // The streaming receive path must assemble a frame that arrives in many
  // small TCP segments — the prelude split across reads, the bulk filling
  // pooled storage a chunk at a time.
  TcpListener listener(0);
  RawPeer peer = ConnectRaw(listener);
  core::Rng rng(5);
  core::Tensor input = core::Tensor::UniformRandom({8, 1, 28, 28}, rng, 0, 1);
  const quant::QuantizedTensor q = quant::QuantizeTensor(input);
  Message msg = Message::WithQuantInput(MsgType::kInfer, 11, "upper50", q);
  msg.SetSlo(1, 99);
  const auto bytes = EncodeMessage(msg);
  ASSERT_GT(bytes.size(), 4096u) << "frame too small to exercise streaming";

  std::thread dribbler([&] {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const std::size_t n = std::min<std::size_t>(977, bytes.size() - off);
      ASSERT_EQ(::send(peer.fd, bytes.data() + off, n, 0),
                static_cast<ssize_t>(n));
      off += n;
      std::this_thread::sleep_for(1ms);
    }
  });
  Message got;
  const auto st = peer.server->Recv(got, 5000ms);
  dribbler.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(got.seq, 11);
  EXPECT_EQ(got.tag, "upper50");
  ASSERT_TRUE(got.has_qpayload());
  EXPECT_TRUE(got.input_quant);
  EXPECT_EQ(got.priority, 1);
  EXPECT_EQ(got.slo_ms, 99);
  EXPECT_EQ(got.qpayload.scale, q.scale);
  EXPECT_EQ(got.qpayload.shape, q.shape);
  EXPECT_EQ(got.qpayload.data, q.data);
}

TEST(TcpTransportTest, DribbledCorruptShapeIsDataLossNotHang) {
  // Same dribble delivery, but the tensor's element count disagrees with
  // its dims: whichever decode path sees it first must fail the stream as
  // DataLoss instead of waiting for bytes that will never come.
  TcpListener listener(0);
  RawPeer peer = ConnectRaw(listener);
  auto bytes = EncodeMessage(
      Message::WithTensor(MsgType::kInfer, 1, "x", SomeTensor(9)));
  // Body layout: [ver][type][seq][batch][tag u32+1]["x"][has_tensor][rank]
  // then the dims; bump dim0's low byte so count != prod(dims).
  const std::size_t dim0_off = 8 + 1 + 1 + 8 + 8 + 4 + 1 + 1 + 4;
  ASSERT_LT(dim0_off, bytes.size());
  bytes[dim0_off] += 1;
  std::thread dribbler([&] {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const std::size_t n = std::min<std::size_t>(64, bytes.size() - off);
      if (::send(peer.fd, bytes.data() + off, n, MSG_NOSIGNAL) <= 0) return;
      off += n;
      std::this_thread::sleep_for(1ms);
    }
  });
  Message got;
  const auto st = peer.server->Recv(got, 5000ms);
  dribbler.join();
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
  EXPECT_TRUE(peer.server->closed());
}

TEST(TcpTransportTest, SendBatchFailsCleanlyOnClosedPeer) {
  auto pair = MakeTcpPair();
  pair.server->Close();
  const Message batch[] = {
      Message::HeaderOnly(MsgType::kAck, 1),
      Message::HeaderOnly(MsgType::kAck, 2),
  };
  // The peer teardown may race the first writev into a success; a second
  // batch must surface the dead link as a Status, never a signal/throw.
  core::Status st = pair.client->SendBatch(batch);
  for (int i = 0; i < 20 && st.ok(); ++i) {
    std::this_thread::sleep_for(10ms);
    st = pair.client->SendBatch(batch);
  }
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(pair.client->closed());
}

TEST(TcpTransportTest, ConnectToDeadPortFailsWithStatus) {
  // Grab an ephemeral port, then close the listener so nobody listens.
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }
  auto client = TcpConnect("127.0.0.1", dead_port, 500ms);
  EXPECT_FALSE(client.ok());
}

TEST(TcpTransportTest, AcceptTimesOutWithStatus) {
  TcpListener listener(0);
  auto server = listener.Accept(30ms);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), core::StatusCode::kDeadlineExceeded);
}

TEST(TcpTransportTest, BadAddressIsInvalidArgument) {
  auto client = TcpConnect("not-an-ip", 1, 100ms);
  EXPECT_EQ(client.status().code(), core::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fluid::dist
