// Wire v6 (distributed-tracing context) and the per-link trace_wire
// negotiation: codec round-trip + fuzz, scatter-encode byte equivalence,
// untraced-frame byte stability, v6 / v5 / v2 peer interop, and
// mid-stream failover keeping the trace intact. Mirrors
// input_quant_wire_test.cpp (wire v5) one version up.

#include <cstring>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "dist/master.h"
#include "dist/message.h"
#include "dist/worker.h"
#include "nn/checkpoint.h"
#include "obs/trace.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

TEST(TraceWireTest, TracedFrameRoundTripsAsVersion6) {
  core::Rng rng(1);
  core::Tensor x = core::Tensor::UniformRandom({4, 1, 28, 28}, rng, 0, 1);
  Message msg = Message::WithBatch(MsgType::kInfer, 42, "upper50", x.Clone());
  msg.SetSlo(1, 250);
  msg.SetTrace(/*id=*/0xABCD1234u, /*parent_span=*/77, /*sent_us=*/123456);
  ASSERT_TRUE(msg.has_trace());
  const auto bytes = EncodeMessage(msg);
  // Body starts after [magic][len]; byte 0 of the body is the version.
  ASSERT_GT(bytes.size(), 9u);
  EXPECT_EQ(bytes[8], 6) << "traced frames must be wire v6";

  Message back;
  ASSERT_TRUE(DecodeMessage(bytes, back).ok());
  EXPECT_EQ(back.type, MsgType::kInfer);
  EXPECT_EQ(back.seq, 42);
  EXPECT_EQ(back.batch, 4);
  ASSERT_TRUE(back.has_trace());
  EXPECT_EQ(back.trace_id, 0xABCD1234u);
  EXPECT_EQ(back.trace_span, 77u);
  EXPECT_EQ(back.trace_sent_us, 123456);
  EXPECT_EQ(back.trace_service_us, 0);
  ASSERT_TRUE(back.has_slo());
  EXPECT_EQ(back.priority, 1);
  EXPECT_EQ(back.slo_ms, 250);
  EXPECT_EQ(static_cast<std::int64_t>(bytes.size()), EncodedSize(msg));
}

TEST(TraceWireTest, TraceRidesQuantInputFramesToo) {
  // The v6 block composes with every lower block: a quantized input shard
  // (v5 marker) with an SLO and a trace decodes all three.
  core::Rng rng(2);
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 28, 28}, rng, 0, 1);
  Message msg = Message::WithQuantInput(MsgType::kInfer, 7, "upper50",
                                        quant::QuantizeTensor(x));
  msg.SetSlo(0, 100);
  msg.SetTrace(99, 3, 1000);
  const auto bytes = EncodeMessage(msg);
  ASSERT_GT(bytes.size(), 9u);
  EXPECT_EQ(bytes[8], 6);

  Message back;
  ASSERT_TRUE(DecodeMessage(bytes, back).ok());
  EXPECT_TRUE(back.input_quant);
  ASSERT_TRUE(back.has_qpayload());
  ASSERT_TRUE(back.has_slo());
  ASSERT_TRUE(back.has_trace());
  EXPECT_EQ(back.trace_id, 99u);
}

TEST(TraceWireTest, UntracedFramesKeepTheirOldVersions) {
  // The whole version matrix below v6 stays byte-stable: the encoder only
  // emits v6 when a trace is attached, so untraced peers never see a
  // version bump from this PR.
  core::Rng rng(3);
  core::Tensor x = core::Tensor::UniformRandom({2, 3}, rng, -1, 1);
  const auto v2 =
      EncodeMessage(Message::WithBatch(MsgType::kInfer, 1, "m", x.Clone()));
  ASSERT_GT(v2.size(), 9u);
  EXPECT_EQ(v2[8], 2);

  Message slo = Message::WithBatch(MsgType::kInfer, 1, "m", x.Clone());
  slo.SetSlo(0, 100);
  const auto v4 = EncodeMessage(slo);
  ASSERT_GT(v4.size(), 9u);
  EXPECT_EQ(v4[8], 4);

  const auto v5 = EncodeMessage(Message::WithQuantInput(
      MsgType::kInfer, 1, "m", quant::QuantizeTensor(x)));
  ASSERT_GT(v5.size(), 9u);
  EXPECT_EQ(v5[8], 5);
}

TEST(TraceWireTest, EchoTraceCopiesContextAndFillsService) {
  core::Rng rng(4);
  core::Tensor x = core::Tensor::UniformRandom({1, 4}, rng, 0, 1);
  Message request = Message::WithBatch(MsgType::kInfer, 5, "m", x.Clone());
  request.SetTrace(321, 9, 5000);
  Message reply = Message::WithBatch(MsgType::kResult, 5, "m", x.Clone());
  reply.EchoTrace(request, /*service_us=*/1234);
  ASSERT_TRUE(reply.has_trace());
  EXPECT_EQ(reply.trace_id, 321u);
  EXPECT_EQ(reply.trace_span, 9u);
  EXPECT_EQ(reply.trace_sent_us, 5000);
  EXPECT_EQ(reply.trace_service_us, 1234);

  // Echoing an untraced request is a no-op: the reply stays untraced and
  // therefore encodes below v6.
  Message plain = Message::WithBatch(MsgType::kInfer, 6, "m", x.Clone());
  Message reply2 = Message::WithBatch(MsgType::kResult, 6, "m", x.Clone());
  reply2.EchoTrace(plain, 777);
  EXPECT_FALSE(reply2.has_trace());
  EXPECT_EQ(EncodeMessage(reply2)[8], 2);
}

TEST(TraceWireTest, ScatterEncodeReassemblesByteIdenticalForV6) {
  core::Rng rng(5);
  core::Tensor x = core::Tensor::UniformRandom({3, 1, 28, 28}, rng, 0, 1);
  Message traced = Message::WithBatch(MsgType::kInfer, 2, "fp", x.Clone());
  traced.SetSlo(2, 40);
  traced.SetTrace(1234, 56, 789000);
  Message traced_quant = Message::WithQuantInput(MsgType::kInfer, 3, "in",
                                                 quant::QuantizeTensor(x));
  traced_quant.SetTrace(4321, 65, 987000);
  const Message msgs[] = {std::move(traced), std::move(traced_quant)};

  core::ByteWriter scaffold;
  std::vector<WireSegment> segments;
  std::vector<std::size_t> frame_sizes;
  for (const Message& m : msgs) {
    const auto n = EncodeMessageScatter(m, scaffold, segments);
    EXPECT_EQ(n, EncodedSize(m));
    frame_sizes.push_back(static_cast<std::size_t>(n));
  }
  std::vector<std::uint8_t> reassembled;
  for (const WireSegment& seg : segments) {
    const std::uint8_t* src = seg.bulk != nullptr
                                  ? seg.bulk
                                  : scaffold.buffer().data() + seg.scaffold_off;
    reassembled.insert(reassembled.end(), src, src + seg.size);
  }
  std::size_t off = 0;
  for (std::size_t i = 0; i < std::size(msgs); ++i) {
    const auto want = EncodeMessage(msgs[i]);
    ASSERT_EQ(want.size(), frame_sizes[i]);
    ASSERT_LE(off + want.size(), reassembled.size());
    EXPECT_TRUE(std::equal(want.begin(), want.end(), reassembled.begin() + off))
        << "frame " << i << " drifted between scatter and plain encode";
    off += want.size();
  }
  EXPECT_EQ(off, reassembled.size());
}

TEST(TraceWireTest, V6DecodeFuzzNeverThrows) {
  core::Rng rng(6);
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 14, 14}, rng, 0, 1);
  Message msg = Message::WithQuantInput(MsgType::kInfer, 9, "upper50",
                                        quant::QuantizeTensor(x));
  msg.SetSlo(0, 75);
  msg.SetTrace(0xDEADBEEFu, 17, 42424242);
  const auto bytes = EncodeMessage(msg);
  ASSERT_EQ(bytes[8], 6);
  // Truncation at every byte boundary fails as Status, never throws.
  for (std::size_t cut_at = 0; cut_at < bytes.size(); ++cut_at) {
    Message out;
    EXPECT_NO_THROW({
      const auto st = DecodeMessage(
          std::span<const std::uint8_t>(bytes.data(), cut_at), out);
      EXPECT_FALSE(st.ok()) << "cut=" << cut_at;
    });
  }
  // Single-byte corruption anywhere must decode or fail cleanly.
  for (std::size_t i = 8; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0xA5;
    Message out;
    EXPECT_NO_THROW({ (void)DecodeMessage(bad, out); }) << "i=" << i;
  }
}

// A hand-rolled minimal v6 body up to (but not including) the trace
// block, so each malformed-trailer case below appends its own bytes.
core::ByteWriter V6BodyPrefix() {
  core::ByteWriter body;
  body.WriteU8(6);        // version
  body.WriteU8(2);        // kInfer
  body.WriteI64(1);       // seq
  body.WriteI64(0);       // batch
  body.WriteString("t");  // tag
  body.WriteU8(0);        // has_tensor
  body.WriteU8(0);        // has_qtensor
  body.WriteU8(0);        // priority
  body.WriteI64(-1);      // slo_ms: "no SLO"
  body.WriteU8(0);        // input_quant: 0 is legal at v6
  return body;
}

std::vector<std::uint8_t> FrameFromBody(const core::ByteWriter& body) {
  core::ByteWriter frame;
  frame.WriteU32(kFrameMagic);
  frame.WriteU32(static_cast<std::uint32_t>(body.buffer().size()));
  std::vector<std::uint8_t> bytes = frame.buffer();
  bytes.insert(bytes.end(), body.buffer().begin(), body.buffer().end());
  return bytes;
}

TEST(TraceWireTest, MalformedTraceBlocksAreRejected) {
  {
    // has_trace flag beyond 1 is corruption.
    core::ByteWriter body = V6BodyPrefix();
    body.WriteU8(2);
    Message out;
    const auto st = DecodeMessage(FrameFromBody(body), out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
  }
  {
    // A trace block whose id is zero contradicts the sampling contract
    // (nonzero id IS the "traced" signal).
    core::ByteWriter body = V6BodyPrefix();
    body.WriteU8(1);
    body.WriteU64(0);   // trace_id
    body.WriteU64(1);   // trace_span
    body.WriteI64(10);  // sent_us
    body.WriteI64(0);   // service_us
    Message out;
    const auto st = DecodeMessage(FrameFromBody(body), out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
  }
  {
    // Negative timestamps are corruption (the steady clock never is).
    core::ByteWriter body = V6BodyPrefix();
    body.WriteU8(1);
    body.WriteU64(5);
    body.WriteU64(1);
    body.WriteI64(-3);
    body.WriteI64(0);
    Message out;
    const auto st = DecodeMessage(FrameFromBody(body), out);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
  }
  {
    // has_trace = 0 with nothing after it is a VALID v6 frame (the
    // encoder never produces one, but the decoder must accept it).
    core::ByteWriter body = V6BodyPrefix();
    body.WriteU8(0);
    Message out;
    ASSERT_TRUE(DecodeMessage(FrameFromBody(body), out).ok());
    EXPECT_FALSE(out.has_trace());
  }
}

// One master + two workers hosting the worker-resident standalone slice —
// the HT fan-out topology, served through the batch scheduler so chunks
// carry trace context. Which link speaks v6 is per-test (EnableTraceWire).
class TraceClusterTest : public ::testing::Test {
 protected:
  TraceClusterTest()
      : fluid_(slim::FluidModel::PaperDefault(7)), master_(cfg_), rng_(99) {
    for (int i = 0; i < 2; ++i) {
      auto [master_end, worker_end] = MakeInMemoryPair();
      workers_.push_back(std::make_unique<WorkerNode>(
          "w" + std::to_string(i), cfg_, std::move(worker_end)));
      workers_.back()->Start();
      master_.AttachWorker(std::move(master_end));
    }
    const auto& family = fluid_.family();
    for (std::size_t w = 0; w < 2; ++w) {
      nn::Sequential upper = fluid_.ExtractSubnet(family.WorkerResident());
      auto bp = ModelBlueprint::Standalone(
          cfg_, family.WorkerResident().range.width());
      EXPECT_TRUE(master_
                      .DeployToWorker("upper50", bp, nn::ExtractState(upper),
                                      2000ms, w)
                      .ok());
    }
    Plan plan;
    plan.worker_standalone = "upper50";
    master_.SetPlan(plan);
    master_.SetMode(sim::Mode::kHighThroughput);
    BatchOptions bopts;
    bopts.max_batch = 8;
    master_.StartServing(bopts);
  }

  ~TraceClusterTest() override {
    master_.StopServing();
    for (auto& w : workers_) w->Stop();
  }

  core::StatusOr<InferReply> TracedInfer(std::uint64_t trace_id,
                                         std::int64_t n = 4) {
    SubmitOptions so;
    so.timeout = 5000ms;
    so.trace_id = trace_id;
    so.trace_parent = 1;
    return master_
        .InferAsync(core::Tensor::UniformRandom({n, 1, 28, 28}, rng_, 0, 1),
                    so)
        .get();
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  MasterNode master_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  core::Rng rng_;
};

TEST_F(TraceClusterTest, V6AndV5OrV2PeersShareOneFanOut) {
  // Only worker 0's link speaks v6; worker 1 never negotiated and must
  // never receive a trace block — in the same fan-out batches.
  master_.EnableTraceWire(0);
  for (int i = 0; i < 6; ++i) {
    auto reply = TracedInfer(0x5100 + static_cast<std::uint64_t>(i), 8);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  EXPECT_GT(workers_[0]->trace_frames(), 0);
  EXPECT_GT(workers_[1]->samples_served(), 0);
  EXPECT_EQ(workers_[1]->trace_frames(), 0)
      << "a non-negotiated peer saw a v6 trace block";
}

TEST_F(TraceClusterTest, UntracedRequestsNeverShipTraceBlocks) {
  master_.EnableTraceWire(0);
  master_.EnableTraceWire(1);
  // trace_id = 0: sampled out. Even with every link v6-capable, no frame
  // may carry a trace block.
  for (int i = 0; i < 4; ++i) {
    auto reply = TracedInfer(0, 8);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  EXPECT_EQ(workers_[0]->trace_frames(), 0);
  EXPECT_EQ(workers_[1]->trace_frames(), 0);
}

TEST_F(TraceClusterTest, FailoverKeepsTheTraceIntact) {
  master_.EnableTraceWire(0);
  {
    auto reply = TracedInfer(0x6001, 4);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  EXPECT_GT(workers_[0]->trace_frames(), 0);

  // The v6 worker dies mid-stream. Traced requests keep completing
  // through the surviving fp32-path peer — which must never see a trace
  // block (the failover re-serve path strips it) — and the trace itself
  // stays intact in the ring: its request-level spans still record.
  workers_[0]->Crash();
  const std::uint64_t failover_trace = 0x6002;
  for (int i = 0; i < 4; ++i) {
    auto reply = TracedInfer(failover_trace + static_cast<std::uint64_t>(i), 2);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  }
  EXPECT_EQ(workers_[1]->trace_frames(), 0);
  EXPECT_GT(master_.stats().failovers, 0);

  bool found_request_span = false;
  for (const obs::Span& s : obs::Tracer::Global().Snapshot()) {
    if (s.trace_id >= failover_trace && s.trace_id < failover_trace + 4 &&
        std::strcmp(s.name, "sched.request") == 0) {
      found_request_span = true;
    }
  }
  EXPECT_TRUE(found_request_span)
      << "the traced request's timeline vanished across the failover";
}

}  // namespace
}  // namespace fluid::dist
