#include "dist/worker.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/rng.h"
#include "dist/blueprint.h"
#include "dist/message.h"
#include "dist/transport.h"
#include "nn/checkpoint.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

// Drives a WorkerNode over a raw transport endpoint, like the master's
// RPC layer but with full control over frame order and SLO blocks. The
// frames are enqueued BEFORE the worker starts, so its first drain sees
// the whole backlog at once and the service order is exactly the
// scheduler's pick order — no timing in the test.
class WorkerPriorityTest : public ::testing::Test {
 protected:
  WorkerPriorityTest() : fluid_(slim::FluidModel::PaperDefault(7)), rng_(21) {
    auto [master_end, worker_end] = MakeInMemoryPair();
    link_ = std::move(master_end);
    worker_ =
        std::make_unique<WorkerNode>("w0", cfg_, std::move(worker_end));
  }

  void EnqueueDeploy(std::int64_t seq) {
    nn::Sequential upper =
        fluid_.ExtractSubnet(fluid_.family().WorkerResident());
    DeployRequest req;
    req.name = "up";
    req.blueprint = ModelBlueprint::Standalone(cfg_, 8);
    req.state = nn::ExtractState(upper);
    ASSERT_TRUE(
        link_->Send(Message::HeaderOnly(MsgType::kDeploy, seq, req.EncodeToTag()))
            .ok());
  }

  // One kInfer frame; cls < 0 means no SLO block (unclassified).
  void EnqueueInfer(std::int64_t seq, int cls, std::int64_t slo_ms) {
    Message msg = Message::WithBatch(
        MsgType::kInfer, seq, "up",
        core::Tensor::UniformRandom({1, 1, 28, 28}, rng_, 0, 1));
    if (cls >= 0) msg.SetSlo(static_cast<std::uint8_t>(cls), slo_ms);
    ASSERT_TRUE(link_->Send(msg).ok());
  }

  // Replies in arrival order, kHello skipped (the worker announces
  // itself when it starts).
  std::vector<std::int64_t> CollectReplySeqs(std::size_t n) {
    std::vector<std::int64_t> seqs;
    while (seqs.size() < n) {
      Message reply;
      const auto st = link_->Recv(reply, 2000ms);
      EXPECT_TRUE(st.ok()) << st.ToString();
      if (!st.ok()) break;
      if (reply.type == MsgType::kHello) continue;
      EXPECT_NE(reply.type, MsgType::kError) << reply.tag;
      seqs.push_back(reply.seq);
    }
    return seqs;
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  core::Rng rng_;
  TransportPtr link_;
  std::unique_ptr<WorkerNode> worker_;
};

TEST_F(WorkerPriorityTest, QueuedFramesServeStrictClassThenEdfNotFifo) {
  EnqueueDeploy(1);
  EnqueueInfer(2, /*cls=*/2, /*slo_ms=*/5000);  // low, arrived first
  EnqueueInfer(3, /*cls=*/1, /*slo_ms=*/500);   // normal, later deadline
  EnqueueInfer(4, /*cls=*/1, /*slo_ms=*/100);   // normal, urgent
  EnqueueInfer(5, /*cls=*/0, /*slo_ms=*/5000);  // high, arrived last
  worker_->Start();

  // Deploy (control) first, then high, then normal by deadline, then
  // low — the arrival order 2,3,4,5 is almost fully inverted.
  const auto seqs = CollectReplySeqs(5);
  ASSERT_EQ(seqs.size(), 5u);
  EXPECT_EQ(seqs[0], 1);  // deploy ack
  EXPECT_EQ(seqs[1], 5);  // kHigh preempts everything queued
  EXPECT_EQ(seqs[2], 4);  // EDF within kNormal
  EXPECT_EQ(seqs[3], 3);
  EXPECT_EQ(seqs[4], 2);  // kLow drains last
  EXPECT_EQ(worker_->priority_reorders(), 3);
  EXPECT_EQ(worker_->samples_served_class(0), 1);
  EXPECT_EQ(worker_->samples_served_class(1), 2);
  EXPECT_EQ(worker_->samples_served_class(2), 1);
  worker_->Stop();
}

TEST_F(WorkerPriorityTest, UnclassifiedFramesKeepFifoOrder) {
  EnqueueDeploy(1);
  for (std::int64_t seq = 2; seq <= 5; ++seq) {
    EnqueueInfer(seq, /*cls=*/-1, /*slo_ms=*/0);
  }
  worker_->Start();

  const auto seqs = CollectReplySeqs(5);
  ASSERT_EQ(seqs.size(), 5u);
  for (std::int64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_EQ(seqs[static_cast<std::size_t>(seq - 1)], seq);
  }
  EXPECT_EQ(worker_->priority_reorders(), 0);
  worker_->Stop();
}

TEST_F(WorkerPriorityTest, ClassifiedUrgentFrameOvertakesUnclassifiedBacklog) {
  EnqueueDeploy(1);
  EnqueueInfer(2, /*cls=*/-1, /*slo_ms=*/0);   // unclassified = kNormal, no deadline
  EnqueueInfer(3, /*cls=*/-1, /*slo_ms=*/0);
  EnqueueInfer(4, /*cls=*/1, /*slo_ms=*/50);   // same class, real deadline
  worker_->Start();

  const auto seqs = CollectReplySeqs(4);
  ASSERT_EQ(seqs.size(), 4u);
  EXPECT_EQ(seqs[0], 1);
  EXPECT_EQ(seqs[1], 4) << "SLO-stamped frame should overtake the backlog";
  EXPECT_EQ(seqs[2], 2);
  EXPECT_EQ(seqs[3], 3);
  EXPECT_GE(worker_->priority_reorders(), 1);
  worker_->Stop();
}

}  // namespace
}  // namespace fluid::dist
