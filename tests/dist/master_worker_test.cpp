#include "dist/master.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "dist/worker.h"
#include "nn/checkpoint.h"
#include "train/model_zoo.h"

namespace fluid::dist {
namespace {

using namespace std::chrono_literals;

// One master + one worker over the in-memory pair, deployed with the
// paper's plan from a real FluidModel — the live counterpart of the
// simulator's Fig. 1/2 rows.
class MasterWorkerTest : public ::testing::Test {
 protected:
  MasterWorkerTest()
      : fluid_(slim::FluidModel::PaperDefault(7)), master_(cfg_), rng_(99) {
    auto [master_end, worker_end] = MakeInMemoryPair();
    worker_ = std::make_unique<WorkerNode>("w0", cfg_, std::move(worker_end));
    worker_->Start();
    master_.AttachWorker(std::move(master_end));
  }

  // The full deployment of the paper: resident slices on both devices plus
  // the combined model split as an HA pipeline.
  void DeployPaperPlan() {
    const auto& family = fluid_.family();
    master_.DeployLocal("lower50",
                        fluid_.ExtractSubnet(family.MasterResident()));
    nn::Sequential combined = fluid_.ExtractSubnet(family.Combined());
    auto halves = train::SplitConvNet(cfg_, family.max_width(), combined, 2);
    master_.DeployLocal("front", std::move(halves.front));
    nn::Sequential upper = fluid_.ExtractSubnet(family.WorkerResident());
    ASSERT_TRUE(master_
                    .DeployToWorker("upper50",
                                    ModelBlueprint::Standalone(
                                        cfg_, family.WorkerResident().range.width()),
                                    nn::ExtractState(upper))
                    .ok());
    ASSERT_TRUE(master_
                    .DeployToWorker("back",
                                    ModelBlueprint::PipelineBack(
                                        cfg_, family.max_width(), 2),
                                    nn::ExtractState(halves.back))
                    .ok());
    master_.SetPlan({"lower50", "upper50", "front", "back"});
  }

  core::Tensor Input(std::int64_t n = 1) {
    return core::Tensor::UniformRandom({n, 1, 28, 28}, rng_, 0, 1);
  }

  slim::FluidNetConfig cfg_;
  slim::FluidModel fluid_;
  MasterNode master_;
  std::unique_ptr<WorkerNode> worker_;
  core::Rng rng_;
};

TEST_F(MasterWorkerTest, DeployRoundTripsThroughTheWire) {
  DeployPaperPlan();
  const auto names = worker_->DeploymentNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "back");
  EXPECT_EQ(names[1], "upper50");
}

TEST_F(MasterWorkerTest, RemoteInferenceMatchesTheExtractedSubnetBitExactly) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighThroughput);
  const core::Tensor x = Input();
  nn::Sequential reference =
      fluid_.ExtractSubnet(fluid_.family().WorkerResident());
  const core::Tensor want = reference.Forward(x, false);

  // Round-robin alternates master/worker; collect until both have served.
  bool saw_remote = false, saw_local = false;
  for (int i = 0; i < 4; ++i) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->served_by == "worker[0]:upper50") {
      saw_remote = true;
      EXPECT_EQ(core::MaxAbsDiff(reply->logits, want), 0.0F)
          << "remote slice diverged from the extracted subnet";
    } else {
      saw_local = true;
    }
  }
  EXPECT_TRUE(saw_remote);
  EXPECT_TRUE(saw_local);
  EXPECT_GT(master_.stats().served_remote, 0);
  EXPECT_GT(master_.stats().served_local, 0);
}

TEST_F(MasterWorkerTest, PipelineModeMatchesTheCombinedModel) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighAccuracy);
  const core::Tensor x = Input();
  nn::Sequential combined = fluid_.ExtractSubnet(fluid_.family().Combined());
  const core::Tensor want = combined.Forward(x, false);

  auto reply = master_.Infer(x, 2000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "pipeline:front+back@worker[0]");
  EXPECT_LT(core::MaxAbsDiff(reply->logits, want), 1e-5F);
  EXPECT_EQ(master_.stats().served_pipeline, 1);
}

TEST_F(MasterWorkerTest, WorkerCrashFailsOverWithoutDroppingARequest) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighThroughput);
  const core::Tensor x = Input();
  worker_->Crash();

  // Every request after the crash must still be answered — by the master.
  for (int i = 0; i < 4; ++i) {
    auto reply = master_.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "master:lower50");
  }
  EXPECT_EQ(master_.AliveWorkers(), 0u);
  EXPECT_GE(master_.stats().failovers, 1);
  EXPECT_EQ(master_.stats().served_local, 4);
}

TEST_F(MasterWorkerTest, PipelineFailsOverToResidentSliceInHighAccuracyMode) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighAccuracy);
  worker_->Crash();
  auto reply = master_.Infer(Input(), 2000ms);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->served_by, "master:lower50");
  EXPECT_GE(master_.stats().failovers, 1);
}

TEST_F(MasterWorkerTest, WorkerServesItsDeploymentsAfterTheMasterIsGone) {
  DeployPaperPlan();
  const core::Tensor x = Input();
  nn::Sequential reference =
      fluid_.ExtractSubnet(fluid_.family().WorkerResident());
  const core::Tensor want = reference.Forward(x, false);
  // "Master failure": nobody drives the transport any more; the worker's
  // own copy of the weights still answers (paper Fig. 1c).
  auto logits = worker_->LocalInfer("upper50", x);
  ASSERT_TRUE(logits.ok());
  EXPECT_EQ(core::MaxAbsDiff(*logits, want), 0.0F);
}

TEST_F(MasterWorkerTest, UnknownModelIsAnErrorButNotADeath) {
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighThroughput);
  EXPECT_FALSE(worker_->LocalInfer("nope", Input()).ok());
  // The worker answered the error; it is still alive and serving.
  EXPECT_EQ(master_.ProbeWorkers(), 1u);
  auto reply = master_.Infer(Input(), 2000ms);
  EXPECT_TRUE(reply.ok());
}

TEST_F(MasterWorkerTest, DeployToMissingWorkerIndexFails) {
  nn::Sequential upper = fluid_.ExtractSubnet(fluid_.family().WorkerResident());
  const auto st = master_.DeployToWorker(
      "upper50", ModelBlueprint::Standalone(cfg_, 8), nn::ExtractState(upper),
      500ms, /*worker=*/7);
  EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
}

TEST_F(MasterWorkerTest, InlineInferRejectsAnEmptyBatchDim) {
  // The scheduler-off path reaches the shard split directly; an empty
  // batch dim must come back kInvalidArgument, not divide by zero.
  DeployPaperPlan();
  master_.SetMode(sim::Mode::kHighThroughput);
  auto reply = master_.Infer(core::Tensor({0, 1, 28, 28}), 500ms);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), core::StatusCode::kInvalidArgument);
  auto rank0 = master_.Infer(core::Tensor(), 500ms);
  ASSERT_FALSE(rank0.ok());
  EXPECT_EQ(rank0.status().code(), core::StatusCode::kInvalidArgument);
}

TEST_F(MasterWorkerTest, InferWithNoPlanReportsUnavailable) {
  auto reply = master_.Infer(Input(), 100ms);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), core::StatusCode::kUnavailable);
}

TEST_F(MasterWorkerTest, ProbeDetectsACrashedWorker) {
  DeployPaperPlan();
  EXPECT_EQ(master_.ProbeWorkers(), 1u);
  worker_->Crash();
  EXPECT_EQ(master_.ProbeWorkers(), 0u);
  EXPECT_FALSE(master_.WorkerAlive(0));
}

TEST(MultiWorkerTest, FailoverChainsToTheNextLiveWorkerWithoutALocalSlice) {
  // Plan with NO master-resident slice: when the round-robin worker dies
  // mid-request, the master must retry the other live worker instead of
  // dropping the request.
  slim::FluidNetConfig cfg;
  slim::FluidModel fluid = slim::FluidModel::PaperDefault(7);
  MasterNode master(cfg);
  std::vector<std::unique_ptr<WorkerNode>> workers;
  for (int i = 0; i < 2; ++i) {
    auto [m_end, w_end] = MakeInMemoryPair();
    workers.push_back(std::make_unique<WorkerNode>("w" + std::to_string(i),
                                                   cfg, std::move(w_end)));
    workers.back()->Start();
    master.AttachWorker(std::move(m_end));
  }
  nn::Sequential upper = fluid.ExtractSubnet(fluid.family().WorkerResident());
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(master
                    .DeployToWorker("upper50",
                                    ModelBlueprint::Standalone(cfg, 8),
                                    nn::ExtractState(upper), 2000ms, i)
                    .ok());
  }
  Plan plan;
  plan.worker_standalone = "upper50";
  master.SetPlan(plan);
  master.SetMode(sim::Mode::kHighThroughput);

  core::Rng rng(4);
  const core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  workers[0]->Crash();
  workers[1]->Crash();
  // Both dead: the request must fail with a Status, never throw.
  EXPECT_FALSE(master.Infer(x, 500ms).ok());

  // Fresh fleet, kill only one: every request must be answered by the
  // survivor no matter where the round-robin pointer sits.
  MasterNode master2(cfg);
  std::vector<std::unique_ptr<WorkerNode>> workers2;
  for (int i = 0; i < 2; ++i) {
    auto [m_end, w_end] = MakeInMemoryPair();
    workers2.push_back(std::make_unique<WorkerNode>("v" + std::to_string(i),
                                                    cfg, std::move(w_end)));
    workers2.back()->Start();
    master2.AttachWorker(std::move(m_end));
    ASSERT_TRUE(master2
                    .DeployToWorker("upper50",
                                    ModelBlueprint::Standalone(cfg, 8),
                                    nn::ExtractState(upper), 2000ms,
                                    static_cast<std::size_t>(i))
                    .ok());
  }
  master2.SetPlan(plan);
  master2.SetMode(sim::Mode::kHighThroughput);
  workers2[0]->Crash();
  for (int i = 0; i < 3; ++i) {
    auto reply = master2.Infer(x, 2000ms);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->served_by, "worker[1]:upper50");
  }
  EXPECT_GE(master2.stats().failovers, 1);
  for (auto& w : workers2) w->Stop();
  for (auto& w : workers) w->Stop();
}

TEST(ModelBlueprintTest, EncodeDecodeRoundTrips) {
  slim::FluidNetConfig cfg;
  const auto bp = ModelBlueprint::PipelineBack(cfg, 16, 2);
  core::ByteWriter w;
  bp.Encode(w);
  core::ByteReader r(w.buffer());
  ModelBlueprint out;
  ASSERT_TRUE(ModelBlueprint::Decode(r, out).ok());
  EXPECT_EQ(out.kind, ModelBlueprint::Kind::kPipelineBack);
  EXPECT_EQ(out.width, 16);
  EXPECT_EQ(out.cut_stage, 2);
  EXPECT_EQ(out.config.num_conv_layers, cfg.num_conv_layers);
}

TEST(ModelBlueprintTest, StandaloneBuildMatchesBuildConvNetLayout) {
  slim::FluidNetConfig cfg;
  core::Rng rng(3);
  nn::Sequential want = train::BuildConvNet(cfg, 8, rng);
  nn::Sequential got = ModelBlueprint::Standalone(cfg, 8).Build();
  ASSERT_EQ(got.size(), want.size());
  const auto wp = want.Params();
  const auto gp = got.Params();
  ASSERT_EQ(gp.size(), wp.size());
  for (std::size_t i = 0; i < wp.size(); ++i) {
    EXPECT_EQ(gp[i].name, wp[i].name);
    EXPECT_EQ(gp[i].value->shape(), wp[i].value->shape());
  }
}

TEST(ModelBlueprintTest, DecodeRejectsGarbageWithoutThrowing) {
  const std::string garbage = "\x01\x07not a blueprint";
  DeployRequest req;
  EXPECT_FALSE(DeployRequest::DecodeFromTag(garbage, req).ok());
}

}  // namespace
}  // namespace fluid::dist
