#include "train/trainer_common.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "train/model_zoo.h"

namespace fluid::train {
namespace {

slim::FluidNetConfig TinyConfig() {
  slim::FluidNetConfig cfg;
  cfg.image_size = 8;
  cfg.num_classes = 2;
  cfg.num_conv_layers = 2;  // 8 → 4 → 2 spatial
  return cfg;
}

TEST(TrainerCommonTest, TrainModelReducesLossOnToyTask) {
  const auto cfg = TinyConfig();
  core::Rng rng(1);
  nn::Sequential model = BuildConvNet(cfg, 4, rng);
  const data::Dataset train = fluid::testing::MakeToyTwoClass(64, 8, 3);

  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 8;
  opts.learning_rate = 0.05F;
  const EvalResult before = EvaluateModel(model, train);
  const double final_loss = TrainModel(model, train, opts);
  const EvalResult after = EvaluateModel(model, train);

  EXPECT_LT(final_loss, before.loss);
  EXPECT_GT(after.accuracy, 0.9);
}

TEST(TrainerCommonTest, TrainSubnetReducesLossAndRespectsSlice) {
  slim::FluidNetConfig cfg = TinyConfig();
  slim::SubnetFamily family({2, 4}, 0);
  core::Rng rng(2);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = fluid::testing::MakeToyTwoClass(64, 8, 4);

  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 8;
  opts.learning_rate = 0.05F;
  const auto spec = family.Lower(0);
  const EvalResult before = EvaluateSubnet(model, spec, train);
  TrainSubnet(model, spec, std::nullopt, /*train_head_bias=*/true, train,
              opts);
  const EvalResult after = EvaluateSubnet(model, spec, train);
  EXPECT_LT(after.loss, before.loss);
  EXPECT_GT(after.accuracy, 0.9);

  // Channels outside the slice must still be at their init values: train
  // the 2-wide slice, check the conv rows [2,4) never moved.
  core::Rng rng2(2);
  slim::FluidModel fresh(cfg, family, rng2);
  const auto trained = model.Params();
  const auto init = fresh.Params();
  for (std::size_t i = 0; i < trained.size(); ++i) {
    if (trained[i].name != "conv1.weight") continue;
    for (std::int64_t o = 2; o < 4; ++o) {
      for (std::int64_t k = 0; k < 9; ++k) {
        EXPECT_EQ(trained[i].value->at(o * 9 + k), init[i].value->at(o * 9 + k));
      }
    }
  }
}

TEST(TrainerCommonTest, EvaluateAgreesBetweenSubnetAndExtractedModel) {
  slim::FluidNetConfig cfg = TinyConfig();
  slim::SubnetFamily family({2, 4}, 0);
  core::Rng rng(5);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset test = fluid::testing::MakeToyTwoClass(32, 8, 6);

  const auto spec = family.Lower(1);
  const EvalResult by_slice = EvaluateSubnet(model, spec, test);
  nn::Sequential extracted = model.ExtractSubnet(spec);
  const EvalResult by_model = EvaluateModel(extracted, test);
  EXPECT_DOUBLE_EQ(by_slice.accuracy, by_model.accuracy);
  EXPECT_NEAR(by_slice.loss, by_model.loss, 1e-6);
}

TEST(TrainerCommonTest, LrDecayReducesStepSizeOverEpochs) {
  // Indirect but deterministic: with lr_decay 0 the second epoch cannot
  // change weights; the final loss equals a single-epoch run's loss.
  slim::FluidNetConfig cfg = TinyConfig();
  core::Rng rng1(7), rng2(7);
  nn::Sequential a = BuildConvNet(cfg, 2, rng1);
  nn::Sequential b = BuildConvNet(cfg, 2, rng2);
  const data::Dataset train = fluid::testing::MakeToyTwoClass(32, 8, 8);

  TrainOptions one;
  one.epochs = 1;
  one.batch_size = 8;
  TrainOptions two_decayed = one;
  two_decayed.epochs = 2;
  two_decayed.lr_decay_per_epoch = 0.0F;  // epoch 2 has lr 0

  TrainModel(a, train, one);
  TrainModel(b, train, two_decayed);
  const auto ea = EvaluateModel(a, train);
  const auto eb = EvaluateModel(b, train);
  EXPECT_NEAR(ea.loss, eb.loss, 1e-9);
}

}  // namespace
}  // namespace fluid::train
