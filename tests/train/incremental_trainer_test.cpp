#include "train/incremental_trainer.h"

#include <gtest/gtest.h>

#include "core/tensor_ops.h"
#include "test_util.h"
#include "train/trainer_common.h"

namespace fluid::train {
namespace {

slim::FluidNetConfig TinyConfig() {
  slim::FluidNetConfig cfg;
  cfg.image_size = 8;
  cfg.num_classes = 2;
  cfg.num_conv_layers = 2;
  return cfg;
}

TEST(IncrementalTrainerTest, TrainsEveryLowerWidthToUsefulAccuracy) {
  const auto cfg = TinyConfig();
  slim::SubnetFamily family({2, 4}, 0);
  core::Rng rng(1);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = fluid::testing::MakeToyTwoClass(96, 8, 11);
  const data::Dataset test = fluid::testing::MakeToyTwoClass(32, 8, 12);

  IncrementalTrainer trainer(model);
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 8;
  opts.learning_rate = 0.05F;
  const auto logs = trainer.Fit(train, &test, opts);

  ASSERT_EQ(logs.size(), 2u);
  for (const auto& log : logs) {
    EXPECT_GT(log.eval_accuracy, 0.85) << log.stage;
  }
}

TEST(IncrementalTrainerTest, EarlierWidthIsBitExactAfterLaterStages) {
  const auto cfg = TinyConfig();
  slim::SubnetFamily family({2, 3, 4}, 0);
  core::Rng rng(2);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = fluid::testing::MakeToyTwoClass(48, 8, 13);
  core::Tensor probe =
      core::Tensor::UniformRandom({4, 1, 8, 8}, rng, 0, 1);

  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 8;

  // Stage 1 manually, snapshot the narrow model, then run the full
  // schedule and verify the narrow model never moved.
  TrainSubnet(model, family.Lower(0), std::nullopt, true, train, opts);
  const core::Tensor logits_before =
      model.Forward(family.Lower(0), probe, false);

  TrainSubnet(model, family.Lower(1), family.Lower(0), false, train, opts);
  TrainSubnet(model, family.Lower(2), family.Lower(1), false, train, opts);

  const core::Tensor logits_after =
      model.Forward(family.Lower(0), probe, false);
  EXPECT_EQ(core::MaxAbsDiff(logits_before, logits_after), 0.0F);
}

TEST(IncrementalTrainerTest, EachStageWritesOnlyItsExclusiveBlock) {
  // Property of the schedule: training width k may change exactly the
  // region mask(k) \ mask(k-1) (plus the head bias for the first stage).
  const auto cfg = TinyConfig();
  slim::SubnetFamily family({2, 3, 4}, 0);
  core::Rng rng(3);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = fluid::testing::MakeToyTwoClass(48, 8, 14);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 8;

  const auto lower = family.LowerFamily();
  for (std::size_t stage = 0; stage < lower.size(); ++stage) {
    // Snapshot all params before the stage.
    std::vector<core::Tensor> before;
    for (auto& p : model.Params()) before.push_back(*p.value);

    const std::optional<slim::SubnetSpec> frozen =
        stage == 0 ? std::nullopt : std::make_optional(lower[stage - 1]);
    const bool head_bias = stage == 0;
    TrainSubnet(model, lower[stage], frozen, head_bias, train, opts);

    const auto masks = model.TrainableMasks(lower[stage], frozen, head_bias);
    const auto params = model.Params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const auto& mask = masks.at(params[i].name);
      for (std::int64_t j = 0; j < mask.numel(); ++j) {
        if (mask.at(j) == 0.0F) {
          EXPECT_EQ(params[i].value->at(j), before[i].at(j))
              << "stage " << lower[stage].name << " wrote outside its block"
              << " in " << params[i].name << " at " << j;
        }
      }
    }
  }
}

}  // namespace
}  // namespace fluid::train
