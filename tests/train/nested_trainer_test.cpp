#include "train/nested_trainer.h"

#include "core/error.h"
#include <functional>

#include <gtest/gtest.h>

#include "core/tensor_ops.h"
#include "data/synthetic_mnist.h"
#include "nn/optimizer.h"
#include "nn/softmax.h"
#include "test_util.h"
#include "train/incremental_trainer.h"
#include "train/trainer_common.h"

namespace fluid::train {
namespace {

slim::FluidNetConfig SmallMnistConfig() {
  slim::FluidNetConfig cfg;
  cfg.image_size = 16;
  cfg.num_conv_layers = 2;  // 16 → 8 → 4 spatial
  return cfg;
}

data::Dataset SmallMnist(std::int64_t count, std::uint64_t seed) {
  data::SyntheticMnistOptions opt;
  opt.image_size = 16;
  return data::MakeSyntheticMnist(count, seed, opt);
}

TEST(NestedTrainerTest, LogsOneEntryPerIterationAndStage) {
  const auto cfg = SmallMnistConfig();
  slim::SubnetFamily family({2, 4}, 0);  // 2 lower + 1 upper
  core::Rng rng(1);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = SmallMnist(60, 21);

  NestedIncrementalTrainer trainer(model);
  NestedTrainOptions opts;
  opts.niters = 2;
  opts.stage.epochs = 1;
  opts.stage.batch_size = 16;
  const auto logs = trainer.Fit(train, nullptr, opts);
  ASSERT_EQ(logs.size(), 6u);  // 2 iterations × (2 lower + 1 upper)
  EXPECT_EQ(logs[0].stage, "iter1/50%");
  EXPECT_EQ(logs[2].stage, "iter1/upper50%");
  EXPECT_EQ(logs[5].stage, "iter2/upper50%");
}

TEST(NestedTrainerTest, AllSubnetsReachUsefulAccuracy) {
  const auto cfg = SmallMnistConfig();
  slim::SubnetFamily family({4, 8}, 0);
  core::Rng rng(2);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = SmallMnist(600, 31);
  const data::Dataset test = SmallMnist(200, 32);

  NestedIncrementalTrainer trainer(model);
  NestedTrainOptions opts;
  opts.niters = 2;
  opts.stage.epochs = 2;
  opts.stage.batch_size = 16;
  opts.stage.learning_rate = 0.08F;
  trainer.Fit(train, nullptr, opts);

  for (const auto& spec : family.All()) {
    const double acc = EvaluateSubnet(model, spec, test).accuracy;
    EXPECT_GT(acc, 0.5) << spec.ToString()
                        << " failed to learn (10-class task, chance = 0.1)";
  }
}

TEST(NestedTrainerTest, MaskedInPlaceEqualsLiteralCopyRetrainCopyBack) {
  // Algorithm 1 lines 7-9 are implemented as masked in-place SGD; this test
  // runs the *literal* protocol — extract the upper model, retrain the
  // standalone copy, import it back — and demands bit-identical parameters.
  const auto cfg = SmallMnistConfig();
  slim::SubnetFamily family({2, 4}, 0);
  core::Rng rng_a(3), rng_b(3);
  slim::FluidModel in_place(cfg, family, rng_a);
  slim::FluidModel literal(cfg, family, rng_b);
  const data::Dataset train = SmallMnist(80, 41);

  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 16;
  opts.learning_rate = 0.05F;
  const auto upper = family.Upper(1);

  // Path A: the library's masked in-place step (head bias frozen).
  TrainSubnet(in_place, upper, std::nullopt, /*train_head_bias=*/false,
              train, opts);

  // Path B: literal copy → retrain → copy back, with the identical SGD
  // schedule, batch order and frozen head bias.
  nn::Sequential standalone = literal.ExtractSubnet(upper);
  {
    nn::Sgd sgd(opts.learning_rate, opts.momentum, opts.weight_decay);
    sgd.SetMask("fc.bias",
                core::Tensor::Zeros({cfg.num_classes}));
    core::Rng shuffle(opts.shuffle_seed ^
                      std::hash<std::string>{}(upper.name));
    const auto params = standalone.Params();
    nn::SoftmaxCrossEntropy loss;
    for (std::int64_t e = 0; e < opts.epochs; ++e) {
      sgd.set_learning_rate(opts.learning_rate);
      data::DataLoader loader(train, opts.batch_size, &shuffle);
      loader.StartEpoch();
      data::Batch batch;
      while (loader.Next(batch)) {
        standalone.ZeroGrad();
        loss.Forward(standalone.Forward(batch.images, true), batch.labels);
        standalone.Backward(loss.Backward());
        sgd.Step(params);
      }
    }
  }
  literal.ImportSubnet(upper, standalone);

  const auto pa = in_place.Params();
  const auto pb = literal.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(core::MaxAbsDiff(*pa[i].value, *pb[i].value), 0.0F)
        << "parameter " << pa[i].name
        << " differs between masked in-place and literal copy-back";
  }
}

TEST(NestedTrainerTest, UpperStandaloneBeatsIncrementalBaseline) {
  // The paper's core claim: nested training makes the upper slice work on
  // its own, which plain incremental training does not.
  const auto cfg = SmallMnistConfig();
  slim::SubnetFamily family({4, 8}, 0);
  core::Rng rng_i(4), rng_n(4);
  slim::FluidModel inc_model(cfg, family, rng_i);
  slim::FluidModel nested_model(cfg, family, rng_n);
  const data::Dataset train = SmallMnist(600, 51);
  const data::Dataset test = SmallMnist(200, 52);

  TrainOptions stage;
  stage.epochs = 2;
  stage.batch_size = 16;
  stage.learning_rate = 0.08F;

  IncrementalTrainer inc(inc_model);
  inc.Fit(train, nullptr, stage);

  NestedIncrementalTrainer nested(nested_model);
  NestedTrainOptions nopts;
  nopts.niters = 2;
  nopts.stage = stage;
  nested.Fit(train, nullptr, nopts);

  const auto upper = family.Upper(1);
  const double acc_inc = EvaluateSubnet(inc_model, upper, test).accuracy;
  const double acc_nested =
      EvaluateSubnet(nested_model, upper, test).accuracy;
  EXPECT_GT(acc_nested, acc_inc + 0.2)
      << "nested training did not unlock the standalone upper slice "
      << "(incremental " << acc_inc << ", nested " << acc_nested << ")";
  EXPECT_GT(acc_nested, 0.5);

  // And the lower family still works under both schedules (the 4-channel
  // narrow model on a small budget only needs to clear chance decisively).
  EXPECT_GT(EvaluateSubnet(nested_model, family.Lower(0), test).accuracy, 0.4);
  EXPECT_GT(EvaluateSubnet(inc_model, family.Lower(0), test).accuracy, 0.4);
}

TEST(NestedTrainerTest, EveryUpperSubnetWorksStandalone) {
  // Regression: the upper family is trained *incrementally* (§II-A), so
  // training upper-50% must not clobber the standalone upper-25% model.
  const auto cfg = SmallMnistConfig();
  slim::SubnetFamily family({2, 4, 8}, 0);  // uppers: [2,4) and [2,8)
  core::Rng rng(6);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = SmallMnist(600, 71);
  const data::Dataset test = SmallMnist(200, 72);

  NestedIncrementalTrainer trainer(model);
  NestedTrainOptions opts;
  opts.niters = 2;
  opts.stage.epochs = 2;
  opts.stage.batch_size = 16;
  opts.stage.learning_rate = 0.08F;
  trainer.Fit(train, nullptr, opts);

  const auto uppers = family.UpperFamily();
  ASSERT_EQ(uppers.size(), 2u);
  for (const auto& u : uppers) {
    const double acc = EvaluateSubnet(model, u, test).accuracy;
    EXPECT_GT(acc, 0.4) << u.ToString()
                        << " cannot classify standalone (chance = 0.1)";
  }
}

TEST(NestedTrainerTest, WiderUpperStageKeepsNarrowerUpperBitExact) {
  const auto cfg = SmallMnistConfig();
  slim::SubnetFamily family({2, 4, 8}, 0);
  core::Rng rng(7);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = SmallMnist(60, 81);
  core::Tensor probe = core::Tensor::UniformRandom(
      {4, 1, cfg.image_size, cfg.image_size}, rng, 0, 1);

  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 16;
  const auto u_narrow = family.Upper(1);  // [2,4)
  const auto u_wide = family.Upper(2);    // [2,8)

  TrainSubnet(model, u_narrow, std::nullopt, false, train, opts);
  const core::Tensor before = model.Forward(u_narrow, probe, false);
  TrainSubnet(model, u_wide, u_narrow, false, train, opts);
  const core::Tensor after = model.Forward(u_narrow, probe, false);
  EXPECT_EQ(core::MaxAbsDiff(before, after), 0.0F);
}

TEST(NestedTrainerTest, RejectsZeroIterations) {
  const auto cfg = SmallMnistConfig();
  slim::SubnetFamily family({2, 4}, 0);
  core::Rng rng(5);
  slim::FluidModel model(cfg, family, rng);
  const data::Dataset train = SmallMnist(20, 61);
  NestedIncrementalTrainer trainer(model);
  NestedTrainOptions opts;
  opts.niters = 0;
  EXPECT_THROW(trainer.Fit(train, nullptr, opts), core::Error);
}

}  // namespace
}  // namespace fluid::train
