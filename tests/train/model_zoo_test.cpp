#include "train/model_zoo.h"

#include "core/error.h"
#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"

namespace fluid::train {
namespace {

TEST(ModelZooTest, BuildConvNetMatchesPaperLayout) {
  slim::FluidNetConfig cfg;  // paper defaults
  core::Rng rng(1);
  nn::Sequential model = BuildConvNet(cfg, 16, rng);
  // 3 × (conv, relu, pool) + flatten + dense.
  EXPECT_EQ(model.size(), 11u);
  core::Tensor x({2, 1, 28, 28});
  EXPECT_EQ(model.Forward(x, false).shape(), core::Shape({2, 10}));
}

TEST(ModelZooTest, SplitPreservesEndToEndFunction) {
  slim::FluidNetConfig cfg;
  core::Rng rng(2);
  nn::Sequential full = BuildConvNet(cfg, 16, rng);
  core::Tensor x = core::Tensor::UniformRandom({2, 1, 28, 28}, rng, 0, 1);
  core::Tensor expected = full.Forward(x, false);

  for (const std::int64_t cut : {1, 2}) {
    PipelineHalves halves = SplitConvNet(cfg, 16, full, cut);
    core::Tensor mid = halves.front.Forward(x, false);
    core::Tensor got = halves.back.Forward(mid, false);
    EXPECT_EQ(core::MaxAbsDiff(got, expected), 0.0F) << "cut=" << cut;
  }
}

TEST(ModelZooTest, CutBytesMatchActivationSize) {
  slim::FluidNetConfig cfg;
  core::Rng rng(3);
  nn::Sequential full = BuildConvNet(cfg, 16, rng);
  // Cut after stage 2: activation is 16 × 7 × 7 floats.
  PipelineHalves halves = SplitConvNet(cfg, 16, full, 2);
  EXPECT_EQ(halves.cut_bytes_per_sample, 16 * 7 * 7 * 4);
  core::Tensor x({1, 1, 28, 28});
  core::Tensor mid = halves.front.Forward(x, false);
  EXPECT_EQ(mid.numel() * static_cast<std::int64_t>(sizeof(float)),
            halves.cut_bytes_per_sample);
}

TEST(ModelZooTest, InvalidCutThrows) {
  slim::FluidNetConfig cfg;
  core::Rng rng(4);
  nn::Sequential full = BuildConvNet(cfg, 8, rng);
  EXPECT_THROW(SplitConvNet(cfg, 8, full, 0), core::Error);
  EXPECT_THROW(SplitConvNet(cfg, 8, full, 3), core::Error);
}

TEST(ModelZooTest, SplitCopiesNotAliases) {
  slim::FluidNetConfig cfg;
  core::Rng rng(5);
  nn::Sequential full = BuildConvNet(cfg, 8, rng);
  PipelineHalves halves = SplitConvNet(cfg, 8, full, 1);
  core::Tensor x = core::Tensor::UniformRandom({1, 1, 28, 28}, rng, 0, 1);
  const core::Tensor before = halves.front.Forward(x, false);
  // Mutating the original must not affect the split halves.
  for (auto& p : full.Params()) p.value->Fill(0.0F);
  const core::Tensor after = halves.front.Forward(x, false);
  EXPECT_EQ(core::MaxAbsDiff(before, after), 0.0F);
}

}  // namespace
}  // namespace fluid::train
