#include "data/synthetic_mnist.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/tensor_ops.h"

namespace fluid::data {
namespace {

TEST(SyntheticMnistTest, RenderDeterministicInSeedAndIndex) {
  const SyntheticMnistOptions opt;
  core::Tensor a = RenderDigit(3, 42, 7, opt);
  core::Tensor b = RenderDigit(3, 42, 7, opt);
  EXPECT_EQ(core::MaxAbsDiff(a, b), 0.0F);
}

TEST(SyntheticMnistTest, DifferentIndicesDiffer) {
  const SyntheticMnistOptions opt;
  core::Tensor a = RenderDigit(3, 42, 7, opt);
  core::Tensor b = RenderDigit(3, 42, 8, opt);
  EXPECT_GT(core::MaxAbsDiff(a, b), 0.01F);
}

TEST(SyntheticMnistTest, PixelsInUnitRange) {
  const SyntheticMnistOptions opt;
  for (std::int64_t d = 0; d <= 9; ++d) {
    core::Tensor img = RenderDigit(d, 1, static_cast<std::uint64_t>(d), opt);
    EXPECT_EQ(img.shape(), core::Shape({1, 1, 28, 28}));
    for (const float v : img.data()) {
      EXPECT_GE(v, 0.0F);
      EXPECT_LE(v, 1.0F);
    }
  }
}

TEST(SyntheticMnistTest, DigitHasInk) {
  const SyntheticMnistOptions opt;
  for (std::int64_t d = 0; d <= 9; ++d) {
    core::Tensor img = RenderDigit(d, 5, 100 + static_cast<std::uint64_t>(d), opt);
    // A drawn digit must have a meaningful bright region...
    EXPECT_GT(core::Sum(img), 20.0) << "digit " << d << " nearly blank";
    // ...but not fill the frame.
    EXPECT_LT(core::Mean(img), 0.5) << "digit " << d << " floods the frame";
  }
}

TEST(SyntheticMnistTest, DatasetBalancedAndLabeled) {
  Dataset ds = MakeSyntheticMnist(200, 7);
  ds.Validate(10);
  EXPECT_EQ(ds.size(), 200);
  std::vector<int> counts(10, 0);
  for (const auto l : ds.labels) ++counts[static_cast<std::size_t>(l)];
  for (const int c : counts) EXPECT_EQ(c, 20);
}

TEST(SyntheticMnistTest, DatasetDeterministicInSeed) {
  Dataset a = MakeSyntheticMnist(50, 9);
  Dataset b = MakeSyntheticMnist(50, 9);
  EXPECT_EQ(core::MaxAbsDiff(a.images, b.images), 0.0F);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticMnistTest, DifferentSeedsGiveDifferentData) {
  Dataset a = MakeSyntheticMnist(50, 9);
  Dataset b = MakeSyntheticMnist(50, 10);
  EXPECT_GT(core::MaxAbsDiff(a.images, b.images), 0.01F);
}

TEST(SyntheticMnistTest, CustomImageSize) {
  SyntheticMnistOptions opt;
  opt.image_size = 16;
  Dataset ds = MakeSyntheticMnist(10, 3, opt);
  EXPECT_EQ(ds.images.shape(), core::Shape({10, 1, 16, 16}));
}

TEST(SyntheticMnistTest, InvalidArgsThrow) {
  EXPECT_THROW(MakeSyntheticMnist(0, 1), core::Error);
  SyntheticMnistOptions opt;
  opt.image_size = 4;
  EXPECT_THROW(RenderDigit(0, 1, 0, opt), core::Error);
}

TEST(SyntheticMnistTest, SameIndexDifferentDigitDiffers) {
  const SyntheticMnistOptions opt;
  core::Tensor a = RenderDigit(1, 42, 7, opt);
  core::Tensor b = RenderDigit(8, 42, 7, opt);
  EXPECT_GT(core::MaxAbsDiff(a, b), 0.1F);
}

}  // namespace
}  // namespace fluid::data
