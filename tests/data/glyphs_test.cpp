#include "data/glyphs.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::data {
namespace {

TEST(GlyphsTest, AllTenDigitsHaveStrokes) {
  for (std::int64_t d = 0; d <= 9; ++d) {
    const Glyph& g = DigitGlyph(d);
    EXPECT_FALSE(g.empty()) << "digit " << d;
    for (const auto& stroke : g) {
      EXPECT_GE(stroke.size(), 2u) << "degenerate stroke in digit " << d;
    }
  }
}

TEST(GlyphsTest, GlyphsStayInsideUnitBox) {
  for (std::int64_t d = 0; d <= 9; ++d) {
    for (const auto& stroke : DigitGlyph(d)) {
      for (const auto& p : stroke) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LE(p.x, 1.0);
        EXPECT_GE(p.y, 0.0);
        EXPECT_LE(p.y, 1.0);
      }
    }
  }
}

TEST(GlyphsTest, DigitOutOfRangeThrows) {
  EXPECT_THROW(DigitGlyph(-1), core::Error);
  EXPECT_THROW(DigitGlyph(10), core::Error);
}

TEST(GlyphsTest, MakeArcEndpoints) {
  const Stroke arc = MakeArc(0.5, 0.5, 0.2, 0.2, 0.0, 3.14159265, 8);
  ASSERT_EQ(arc.size(), 9u);
  EXPECT_NEAR(arc.front().x, 0.7, 1e-9);
  EXPECT_NEAR(arc.front().y, 0.5, 1e-9);
  EXPECT_NEAR(arc.back().x, 0.3, 1e-6);
  EXPECT_NEAR(arc.back().y, 0.5, 1e-6);
}

TEST(SegmentDistanceTest, PointProjectionCases) {
  const Point a{0, 0}, b{1, 0};
  // Perpendicular foot inside the segment.
  EXPECT_NEAR(SegmentDistanceSquared({0.5, 1.0}, a, b), 1.0, 1e-12);
  // Clamped to endpoint a.
  EXPECT_NEAR(SegmentDistanceSquared({-2.0, 0.0}, a, b), 4.0, 1e-12);
  // Clamped to endpoint b.
  EXPECT_NEAR(SegmentDistanceSquared({3.0, 0.0}, a, b), 4.0, 1e-12);
  // Degenerate zero-length segment.
  EXPECT_NEAR(SegmentDistanceSquared({1.0, 1.0}, a, a), 2.0, 1e-12);
}

TEST(GlyphDistanceTest, OnStrokeIsZero) {
  const Glyph& one = DigitGlyph(1);
  // The vertical stroke of "1" passes through (0.52, 0.5).
  EXPECT_NEAR(GlyphDistance(one, {0.52, 0.5}), 0.0, 1e-9);
  EXPECT_GT(GlyphDistance(one, {0.05, 0.05}), 0.2);
}

}  // namespace
}  // namespace fluid::data
