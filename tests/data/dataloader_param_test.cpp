// Parameterized coverage sweep of DataLoader: for every (dataset size,
// batch size, shuffled?) combination, one epoch must visit every sample
// exactly once with correctly paired labels.

#include <map>

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace fluid::data {
namespace {

struct LoaderCase {
  std::int64_t dataset_size;
  std::int64_t batch_size;
  bool shuffled;
};

class DataLoaderSweep : public ::testing::TestWithParam<LoaderCase> {};

TEST_P(DataLoaderSweep, OneEpochIsExactCover) {
  const auto c = GetParam();
  Dataset ds;
  ds.images = core::Tensor({c.dataset_size, 1, 2, 2});
  ds.labels.resize(static_cast<std::size_t>(c.dataset_size));
  for (std::int64_t i = 0; i < c.dataset_size; ++i) {
    for (std::int64_t p = 0; p < 4; ++p) {
      ds.images.at(i * 4 + p) = static_cast<float>(i);
    }
    ds.labels[static_cast<std::size_t>(i)] = i % 7;
  }

  core::Rng rng(99);
  DataLoader loader(ds, c.batch_size, c.shuffled ? &rng : nullptr);
  loader.StartEpoch();

  std::map<std::int64_t, int> visits;
  Batch batch;
  std::int64_t batches = 0;
  std::int64_t total = 0;
  while (loader.Next(batch)) {
    ++batches;
    EXPECT_LE(batch.size(), c.batch_size);
    EXPECT_GT(batch.size(), 0);
    total += batch.size();
    for (std::int64_t i = 0; i < batch.size(); ++i) {
      const auto id = static_cast<std::int64_t>(batch.images.at(i * 4));
      ++visits[id];
      EXPECT_EQ(batch.labels[static_cast<std::size_t>(i)], id % 7);
    }
  }
  EXPECT_EQ(total, c.dataset_size);
  EXPECT_EQ(batches, loader.NumBatches());
  EXPECT_EQ(static_cast<std::int64_t>(visits.size()), c.dataset_size);
  for (const auto& [id, count] : visits) EXPECT_EQ(count, 1) << "sample " << id;
}

INSTANTIATE_TEST_SUITE_P(
    SizeBatchGrid, DataLoaderSweep,
    ::testing::Values(LoaderCase{1, 1, false}, LoaderCase{1, 8, true},
                      LoaderCase{7, 3, false}, LoaderCase{7, 3, true},
                      LoaderCase{8, 8, true}, LoaderCase{9, 8, true},
                      LoaderCase{64, 1, true}, LoaderCase{100, 32, false},
                      LoaderCase{100, 32, true}, LoaderCase{31, 7, true}),
    [](const ::testing::TestParamInfo<LoaderCase>& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.dataset_size) + "_b" +
             std::to_string(c.batch_size) + (c.shuffled ? "_shuf" : "_seq");
    });

}  // namespace
}  // namespace fluid::data
