#include "data/dataset.h"

#include <set>

#include <gtest/gtest.h>

#include "core/error.h"
#include "test_util.h"

namespace fluid::data {
namespace {

Dataset MakeCounting(std::int64_t n) {
  // Sample i has all pixels = i, label = i % 3.
  Dataset ds;
  ds.images = core::Tensor({n, 1, 2, 2});
  ds.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t p = 0; p < 4; ++p) {
      ds.images.at(i * 4 + p) = static_cast<float>(i);
    }
    ds.labels[static_cast<std::size_t>(i)] = i % 3;
  }
  return ds;
}

TEST(DatasetTest, SliceCopiesRange) {
  Dataset ds = MakeCounting(10);
  Dataset s = ds.Slice(3, 6);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.images.at(0), 3.0F);
  EXPECT_EQ(s.labels[0], 0);
  EXPECT_THROW(ds.Slice(5, 11), core::Error);
  EXPECT_THROW(ds.Slice(-1, 2), core::Error);
}

TEST(DatasetTest, ImageAndLabelAccessors) {
  Dataset ds = MakeCounting(4);
  core::Tensor img = ds.Image(2);
  EXPECT_EQ(img.shape(), core::Shape({1, 1, 2, 2}));
  EXPECT_EQ(img.at(0), 2.0F);
  EXPECT_EQ(ds.Label(2), 2);
  EXPECT_THROW(ds.Image(4), core::Error);
}

TEST(DatasetTest, GatherReordersAndDuplicates) {
  Dataset ds = MakeCounting(5);
  Dataset g = ds.Gather({4, 0, 4});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.images.at(0), 4.0F);
  EXPECT_EQ(g.images.at(4), 0.0F);
  EXPECT_EQ(g.images.at(8), 4.0F);
  EXPECT_THROW(ds.Gather({5}), core::Error);
}

TEST(DatasetTest, ValidateCatchesBadLabels) {
  Dataset ds = MakeCounting(6);
  EXPECT_NO_THROW(ds.Validate(3));
  EXPECT_THROW(ds.Validate(2), core::Error);
}

TEST(DataLoaderTest, CoversEverySampleOnce) {
  Dataset ds = MakeCounting(10);
  core::Rng rng(1);
  DataLoader loader(ds, 3, &rng);
  loader.StartEpoch();
  EXPECT_EQ(loader.NumBatches(), 4);  // 3+3+3+1

  std::multiset<float> seen;
  Batch batch;
  std::int64_t batches = 0;
  while (loader.Next(batch)) {
    ++batches;
    EXPECT_LE(batch.size(), 3);
    for (std::int64_t i = 0; i < batch.size(); ++i) {
      seen.insert(batch.images.at(i * 4));
    }
  }
  EXPECT_EQ(batches, 4);
  EXPECT_EQ(seen.size(), 10u);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seen.count(static_cast<float>(i)), 1u);
  }
}

TEST(DataLoaderTest, ShuffleChangesOrderAcrossEpochs) {
  Dataset ds = MakeCounting(32);
  core::Rng rng(2);
  DataLoader loader(ds, 32, &rng);
  loader.StartEpoch();
  Batch first;
  ASSERT_TRUE(loader.Next(first));
  loader.StartEpoch();
  Batch second;
  ASSERT_TRUE(loader.Next(second));
  bool any_diff = false;
  for (std::int64_t i = 0; i < 32 && !any_diff; ++i) {
    any_diff = first.images.at(i * 4) != second.images.at(i * 4);
  }
  EXPECT_TRUE(any_diff);
}

TEST(DataLoaderTest, NoRngMeansStableOrder) {
  Dataset ds = MakeCounting(5);
  DataLoader loader(ds, 2, nullptr);
  loader.StartEpoch();
  Batch b;
  ASSERT_TRUE(loader.Next(b));
  EXPECT_EQ(b.images.at(0), 0.0F);
  EXPECT_EQ(b.labels[1], 1);
  ASSERT_TRUE(loader.Next(b));
  ASSERT_TRUE(loader.Next(b));
  EXPECT_EQ(b.size(), 1);  // final partial batch kept
  EXPECT_FALSE(loader.Next(b));
}

TEST(DataLoaderTest, BatchLabelsTravelWithImages) {
  Dataset ds = MakeCounting(9);
  core::Rng rng(3);
  DataLoader loader(ds, 4, &rng);
  loader.StartEpoch();
  Batch batch;
  while (loader.Next(batch)) {
    for (std::int64_t i = 0; i < batch.size(); ++i) {
      const auto value = static_cast<std::int64_t>(batch.images.at(i * 4));
      EXPECT_EQ(batch.labels[static_cast<std::size_t>(i)], value % 3);
    }
  }
}

TEST(DataLoaderTest, ZeroBatchSizeThrows) {
  Dataset ds = MakeCounting(3);
  EXPECT_THROW(DataLoader(ds, 0, nullptr), core::Error);
}

}  // namespace
}  // namespace fluid::data
