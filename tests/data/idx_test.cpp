#include "data/idx.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace fluid::data {
namespace {

void WriteBigEndianU32(std::ofstream& f, std::uint32_t v) {
  const char bytes[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                         static_cast<char>(v >> 8), static_cast<char>(v)};
  f.write(bytes, 4);
}

std::string WriteImagesFile(std::uint32_t n, std::uint32_t rows,
                            std::uint32_t cols, std::uint8_t fill) {
  const std::string path = ::testing::TempDir() + "/fluid_idx_images.bin";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  WriteBigEndianU32(f, 0x00000803);
  WriteBigEndianU32(f, n);
  WriteBigEndianU32(f, rows);
  WriteBigEndianU32(f, cols);
  for (std::uint32_t i = 0; i < n * rows * cols; ++i) {
    f.put(static_cast<char>(fill));
  }
  return path;
}

std::string WriteLabelsFile(const std::vector<std::uint8_t>& labels) {
  const std::string path = ::testing::TempDir() + "/fluid_idx_labels.bin";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  WriteBigEndianU32(f, 0x00000801);
  WriteBigEndianU32(f, static_cast<std::uint32_t>(labels.size()));
  for (const auto l : labels) f.put(static_cast<char>(l));
  return path;
}

TEST(IdxTest, LoadsImagesScaledToUnit) {
  const std::string path = WriteImagesFile(2, 3, 3, 255);
  auto images = LoadIdxImages(path);
  ASSERT_TRUE(images.ok());
  EXPECT_EQ(images->shape(), core::Shape({2, 1, 3, 3}));
  EXPECT_EQ(images->at(0), 1.0F);
  std::remove(path.c_str());
}

TEST(IdxTest, LoadsLabels) {
  const std::string path = WriteLabelsFile({3, 1, 4, 1, 5});
  auto labels = LoadIdxLabels(path);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->size(), 5u);
  EXPECT_EQ((*labels)[2], 4);
  std::remove(path.c_str());
}

TEST(IdxTest, DatasetPairsImagesAndLabels) {
  const std::string img = WriteImagesFile(3, 2, 2, 128);
  const std::string lbl = WriteLabelsFile({0, 1, 2});
  auto ds = LoadIdxDataset(img, lbl);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 3);
  EXPECT_NEAR(ds->images.at(0), 128.0F / 255.0F, 1e-6F);
  std::remove(img.c_str());
  std::remove(lbl.c_str());
}

TEST(IdxTest, CountMismatchRejected) {
  const std::string img = WriteImagesFile(3, 2, 2, 0);
  const std::string lbl = WriteLabelsFile({0, 1});
  EXPECT_EQ(LoadIdxDataset(img, lbl).status().code(),
            core::StatusCode::kDataLoss);
  std::remove(img.c_str());
  std::remove(lbl.c_str());
}

TEST(IdxTest, BadMagicRejected) {
  const std::string lbl = WriteLabelsFile({1});
  EXPECT_EQ(LoadIdxImages(lbl).status().code(), core::StatusCode::kDataLoss);
  std::remove(lbl.c_str());
}

TEST(IdxTest, TruncatedPayloadRejected) {
  const std::string path = ::testing::TempDir() + "/fluid_idx_trunc.bin";
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    WriteBigEndianU32(f, 0x00000803);
    WriteBigEndianU32(f, 10);
    WriteBigEndianU32(f, 28);
    WriteBigEndianU32(f, 28);
    f.put(0);  // far too short
  }
  EXPECT_EQ(LoadIdxImages(path).status().code(), core::StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(IdxTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadIdxImages("/no/such/file").status().code(),
            core::StatusCode::kNotFound);
}

}  // namespace
}  // namespace fluid::data
