#include "data/mnist.h"

#include <gtest/gtest.h>

#include "core/tensor_ops.h"

namespace fluid::data {
namespace {

TEST(MnistTest, FallsBackToSyntheticWhenDirMissing) {
  const auto splits =
      LoadMnistOrSynthetic("/no/such/dir", 100, 40, /*seed=*/5);
  EXPECT_FALSE(splits.from_real_files);
  EXPECT_EQ(splits.train.size(), 100);
  EXPECT_EQ(splits.test.size(), 40);
  splits.train.Validate(10);
  splits.test.Validate(10);
}

TEST(MnistTest, TrainAndTestSplitsDiffer) {
  const auto splits = LoadMnistOrSynthetic("/no/such/dir", 50, 50, 5);
  EXPECT_GT(core::MaxAbsDiff(splits.train.images, splits.test.images), 0.01F);
}

TEST(MnistTest, DeterministicInSeed) {
  const auto a = LoadMnistOrSynthetic("/no/such/dir", 30, 10, 9);
  const auto b = LoadMnistOrSynthetic("/no/such/dir", 30, 10, 9);
  EXPECT_EQ(core::MaxAbsDiff(a.train.images, b.train.images), 0.0F);
}

TEST(MnistTest, SynthOptionsArePassedThrough) {
  SyntheticMnistOptions small;
  small.image_size = 16;
  const auto splits = LoadMnistOrSynthetic("/no/such/dir", 10, 10, 1, small);
  EXPECT_EQ(splits.train.images.shape()[2], 16);
}

TEST(MnistTest, HardPresetIsActuallyHarder) {
  // The hard preset must produce noisier images (higher background energy)
  // than the default — a coarse but meaningful guard on the preset.
  const auto easy = MakeSyntheticMnist(64, 3, SyntheticMnistOptions{});
  const auto hard = MakeSyntheticMnist(64, 3, SyntheticMnistOptions::Hard());
  EXPECT_GT(core::Mean(hard.images), core::Mean(easy.images) * 0.5);
  // Count near-zero pixels: the noisy preset has far fewer.
  const auto count_dark = [](const Dataset& ds) {
    std::int64_t dark = 0;
    for (const float v : ds.images.data()) dark += v < 0.02F;
    return dark;
  };
  EXPECT_LT(count_dark(hard), count_dark(easy));
}

}  // namespace
}  // namespace fluid::data
