#include "nn/flatten.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/tensor_ops.h"

namespace fluid::nn {
namespace {

TEST(FlattenTest, CollapsesTrailingAxes) {
  Flatten flatten;
  core::Tensor x({3, 2, 4, 4});
  core::Tensor y = flatten.Forward(x, false);
  EXPECT_EQ(y.shape(), core::Shape({3, 32}));
}

TEST(FlattenTest, PreservesDataOrder) {
  Flatten flatten;
  core::Tensor x(core::Shape{1, 2, 1, 2}, {1, 2, 3, 4});
  core::Tensor y = flatten.Forward(x, false);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(y.at(i), x.at(i));
}

TEST(FlattenTest, BackwardRestoresShape) {
  Flatten flatten;
  core::Tensor x({2, 3, 2, 2});
  flatten.Forward(x, true);
  core::Tensor g = core::Tensor::Ones({2, 12});
  core::Tensor gi = flatten.Backward(g);
  EXPECT_EQ(gi.shape(), x.shape());
  EXPECT_DOUBLE_EQ(core::Sum(gi), 24.0);
}

TEST(FlattenTest, BackwardWithoutTrainingForwardThrows) {
  Flatten flatten;
  core::Tensor x({1, 4});
  flatten.Forward(x, /*training=*/false);  // does not cache
  EXPECT_THROW(flatten.Backward(x), core::Error);
}

TEST(FlattenTest, Rank2IsPassThrough) {
  Flatten flatten;
  core::Tensor x(core::Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  core::Tensor y = flatten.Forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_EQ(core::MaxAbsDiff(x, y), 0.0F);
}

TEST(FlattenTest, ZeroBatchSupported) {
  Flatten flatten;
  core::Tensor x({0, 3, 2, 2});
  core::Tensor y = flatten.Forward(x, false);
  EXPECT_EQ(y.shape()[0], 0);
}

}  // namespace
}  // namespace fluid::nn
