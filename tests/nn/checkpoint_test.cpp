#include "nn/checkpoint.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/sequential.h"

namespace fluid::nn {
namespace {

Sequential MakeModel(std::uint64_t seed) {
  core::Rng rng(seed);
  Sequential model;
  model.Emplace<Conv2d>(1, 2, 3, 1, 1, rng, "c1");
  model.Emplace<Dense>(8, 4, rng, "fc");
  return model;
}

TEST(CheckpointTest, ExtractLoadRoundTrip) {
  Sequential a = MakeModel(1);
  Sequential b = MakeModel(2);
  const StateDict state = ExtractState(a);
  ASSERT_TRUE(LoadState(b, state).ok());
  for (std::size_t i = 0; i < a.Params().size(); ++i) {
    EXPECT_TRUE(core::AllClose(*a.Params()[i].value, *b.Params()[i].value));
  }
}

TEST(CheckpointTest, SerializeParseRoundTrip) {
  Sequential a = MakeModel(3);
  const auto bytes = SerializeState(ExtractState(a));
  auto parsed = ParseState(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 4u);
  EXPECT_TRUE(parsed->contains("c1.weight"));
  EXPECT_TRUE(parsed->contains("fc.bias"));
}

TEST(CheckpointTest, MissingParamFailsUnlessPartial) {
  Sequential a = MakeModel(4);
  StateDict state = ExtractState(a);
  state.erase("fc.bias");
  Sequential b = MakeModel(5);
  EXPECT_EQ(LoadState(b, state).code(), core::StatusCode::kNotFound);
  EXPECT_TRUE(LoadState(b, state, /*allow_partial=*/true).ok());
}

TEST(CheckpointTest, ShapeMismatchRejected) {
  Sequential a = MakeModel(6);
  StateDict state = ExtractState(a);
  state["c1.weight"] = core::Tensor({1, 1, 3, 3});
  Sequential b = MakeModel(7);
  EXPECT_EQ(LoadState(b, state).code(), core::StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, CorruptMagicRejected) {
  std::vector<std::uint8_t> bytes{'n', 'o', 'p', 'e', 0, 0, 0, 0};
  EXPECT_EQ(ParseState(bytes).status().code(), core::StatusCode::kDataLoss);
}

TEST(CheckpointTest, FileSaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/fluid_ckpt_test.bin";
  Sequential a = MakeModel(8);
  ASSERT_TRUE(SaveCheckpoint(a, path).ok());
  Sequential b = MakeModel(9);
  ASSERT_TRUE(LoadCheckpoint(b, path).ok());
  EXPECT_TRUE(core::AllClose(*a.Params()[0].value, *b.Params()[0].value));
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadFromMissingFileIsNotFound) {
  Sequential a = MakeModel(10);
  EXPECT_EQ(LoadCheckpoint(a, "/nonexistent/dir/x.bin").code(),
            core::StatusCode::kNotFound);
}

}  // namespace
}  // namespace fluid::nn
