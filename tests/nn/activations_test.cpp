#include "nn/activations.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::nn {
namespace {

TEST(ReLUTest, ClampsNegativesToZero) {
  ReLU relu;
  core::Tensor x(core::Shape{4}, {-1.0F, 0.0F, 2.0F, -0.5F});
  core::Tensor y = relu.Forward(x, false);
  EXPECT_EQ(y.at(0), 0.0F);
  EXPECT_EQ(y.at(1), 0.0F);
  EXPECT_EQ(y.at(2), 2.0F);
  EXPECT_EQ(y.at(3), 0.0F);
}

TEST(ReLUTest, BackwardGatesByInputSign) {
  ReLU relu;
  core::Tensor x(core::Shape{3}, {-1.0F, 0.5F, 3.0F});
  relu.Forward(x, true);
  core::Tensor g(core::Shape{3}, {10.0F, 10.0F, 10.0F});
  core::Tensor gi = relu.Backward(g);
  EXPECT_EQ(gi.at(0), 0.0F);
  EXPECT_EQ(gi.at(1), 10.0F);
  EXPECT_EQ(gi.at(2), 10.0F);
}

TEST(ReLUTest, BackwardWithoutForwardThrows) {
  ReLU relu;
  EXPECT_THROW(relu.Backward(core::Tensor({2})), core::Error);
}

TEST(ReLUTest, HasNoParams) {
  ReLU relu;
  EXPECT_TRUE(relu.Params().empty());
}

}  // namespace
}  // namespace fluid::nn
