// The serve-path Conv2d + LeakyReLU fold: the activation runs inside the
// fused conv's bias scatter (which already touches every output element),
// and must be BITWISE identical to the separate activation layer — the
// scatter computes exactly the same v > 0 ? v : slope·v after the same
// bias add, so any difference is a bug, not rounding.

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor_ops.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace fluid::nn {
namespace {

TEST(ConvFusionTest, ForwardFusedLeakyMatchesSeparateLayerBitwise) {
  core::Rng rng(31);
  Conv2d conv(3, 8, 3, 1, 1, rng, "conv");
  LeakyReLU leaky(0.01F);
  core::Tensor x = core::Tensor::UniformRandom({5, 3, 11, 11}, rng, -1, 1);

  core::Tensor ref = leaky.Forward(conv.Forward(x, false), false);
  core::Tensor got = conv.ForwardFusedLeaky(x, 0.01F);
  EXPECT_EQ(core::MaxAbsDiff(ref, got), 0.0F);
}

TEST(ConvFusionTest, SequentialInferencePeepholeIsBitwiseTransparent) {
  core::Rng rng(32);
  Sequential model;
  model.Emplace<Conv2d>(1, 6, 3, 1, 1, rng, "conv1");
  model.Emplace<LeakyReLU>(0.01F);
  model.Emplace<MaxPool2d>(2);
  model.Emplace<Conv2d>(6, 6, 3, 1, 1, rng, "conv2");
  model.Emplace<LeakyReLU>(0.01F);
  model.Emplace<MaxPool2d>(2);
  model.Emplace<Flatten>();
  model.Emplace<Dense>(6 * 7 * 7, 10, rng, "fc");

  core::Tensor x = core::Tensor::UniformRandom({4, 1, 28, 28}, rng, 0, 1);
  // Training path runs every layer separately (no peephole); the
  // inference path folds both activations. They must agree bitwise.
  core::Tensor ref = model.Forward(x, true);
  core::Tensor inf = model.Forward(x, false);
  EXPECT_EQ(core::MaxAbsDiff(ref, inf), 0.0F);

  core::Tensor moved = model.ForwardInference(x.Clone());
  EXPECT_EQ(core::MaxAbsDiff(ref, moved), 0.0F);
}

TEST(ConvFusionTest, PeepholeAppliesAtTheFirstLayerToo) {
  core::Rng rng(33);
  Sequential model;
  model.Emplace<Conv2d>(2, 4, 3, 1, 1, rng, "conv");
  model.Emplace<LeakyReLU>(0.05F);
  core::Tensor x = core::Tensor::UniformRandom({2, 2, 9, 9}, rng, -1, 1);
  core::Tensor ref = model.Forward(x, true);
  core::Tensor got = model.Forward(x, false);
  EXPECT_EQ(core::MaxAbsDiff(ref, got), 0.0F);
}

TEST(ConvFusionTest, TrailingConvWithoutActivationIsUntouched) {
  core::Rng rng(34);
  Sequential model;
  model.Emplace<Conv2d>(1, 3, 3, 1, 1, rng, "conv");  // no activation after
  core::Tensor x = core::Tensor::UniformRandom({1, 1, 7, 7}, rng, -1, 1);
  core::Tensor ref = model.Forward(x, true);
  core::Tensor got = model.Forward(x, false);
  EXPECT_EQ(core::MaxAbsDiff(ref, got), 0.0F);
}

}  // namespace
}  // namespace fluid::nn
