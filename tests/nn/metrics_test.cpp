#include "nn/metrics.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::nn {
namespace {

TEST(AccuracyTest, CountsCorrectArgmax) {
  core::Tensor logits(core::Shape{3, 2}, {0.9F, 0.1F,   // pred 0
                                          0.2F, 0.8F,   // pred 1
                                          0.6F, 0.4F}); // pred 0
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 0}), 1.0);
}

TEST(AccuracyTest, LabelCountMismatchThrows) {
  core::Tensor logits({2, 2});
  EXPECT_THROW(Accuracy(logits, {0}), core::Error);
}

TEST(AverageMeterTest, WeightedMean) {
  AverageMeter m;
  m.Add(1.0, 1);
  m.Add(3.0, 3);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_EQ(m.count(), 4);
  m.Reset();
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(ConfusionMatrixTest, AccumulatesAndComputesMetrics) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(1, 0);  // class 0 misclassified as 1
  cm.Add(1, 1);
  cm.Add(2, 2);
  EXPECT_EQ(cm.total(), 5);
  EXPECT_EQ(cm.at(0, 0), 2);
  EXPECT_EQ(cm.at(1, 0), 1);
  EXPECT_DOUBLE_EQ(cm.OverallAccuracy(), 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(cm.Recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(cm.Recall(2), 1.0);
}

TEST(ConfusionMatrixTest, UnseenClassHasZeroRecall) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 0.0);
}

TEST(ConfusionMatrixTest, AddBatchUsesArgmax) {
  ConfusionMatrix cm(2);
  core::Tensor logits(core::Shape{2, 2}, {0.9F, 0.1F, 0.1F, 0.9F});
  cm.AddBatch(logits, {0, 0});
  EXPECT_EQ(cm.at(0, 0), 1);
  EXPECT_EQ(cm.at(1, 0), 1);
}

TEST(ConfusionMatrixTest, BoundsChecked) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.Add(2, 0), core::Error);
  EXPECT_THROW(cm.at(0, -1), core::Error);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.Add(1, 1);
  EXPECT_NE(cm.ToString().find("1"), std::string::npos);
}

}  // namespace
}  // namespace fluid::nn
