#include "nn/dense.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "core/tensor_ops.h"
#include "nn/softmax.h"
#include "test_util.h"

namespace fluid::nn {
namespace {

TEST(DenseTest, ForwardMatchesManualMatmul) {
  core::Rng rng(1);
  Dense dense(3, 2, rng);
  dense.weight() = core::Tensor(core::Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  dense.bias() = core::Tensor(core::Shape{2}, {0.5F, -0.5F});
  core::Tensor input(core::Shape{1, 3}, {1, 1, 1});
  core::Tensor out = dense.Forward(input, false);
  EXPECT_NEAR(out.at(0), 6.5F, 1e-5F);
  EXPECT_NEAR(out.at(1), 14.5F, 1e-5F);
}

TEST(DenseTest, RejectsWrongInputWidth) {
  core::Rng rng(2);
  Dense dense(4, 2, rng);
  EXPECT_THROW(dense.Forward(core::Tensor({1, 3}), false), core::Error);
}

TEST(DenseTest, GradientsMatchFiniteDifferences) {
  core::Rng rng(3);
  Dense dense(5, 3, rng, "d");
  core::Tensor input = core::Tensor::UniformRandom({4, 5}, rng, -1, 1);
  const std::vector<std::int64_t> labels{0, 1, 2, 1};

  SoftmaxCrossEntropy loss;
  const auto compute_loss = [&] {
    return loss.Forward(dense.Forward(input, true), labels);
  };

  compute_loss();
  dense.ZeroGrad();
  core::Tensor grad_input = dense.Backward(loss.Backward());

  auto params = dense.Params();
  fluid::testing::ExpectGradientsMatch(*params[0].value, *params[0].grad,
                                       compute_loss);
  fluid::testing::ExpectGradientsMatch(*params[1].value, *params[1].grad,
                                       compute_loss);
  fluid::testing::ExpectGradientsMatch(input, grad_input, compute_loss);
}

TEST(DenseTest, BackwardWithoutForwardThrows) {
  core::Rng rng(4);
  Dense dense(2, 2, rng);
  EXPECT_THROW(dense.Backward(core::Tensor({1, 2})), core::Error);
}

TEST(DenseTest, ParamNamesFollowLayerName) {
  core::Rng rng(5);
  Dense dense(2, 2, rng, "fc9");
  EXPECT_EQ(dense.Params()[0].name, "fc9.weight");
  EXPECT_EQ(dense.Params()[1].name, "fc9.bias");
}

}  // namespace
}  // namespace fluid::nn
