#include "nn/sequential.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "nn/softmax.h"
#include "test_util.h"

namespace fluid::nn {
namespace {

Sequential MakeTinyCnn(core::Rng& rng) {
  Sequential model;
  model.Emplace<Conv2d>(1, 2, 3, 1, 1, rng, "c1");
  model.Emplace<ReLU>();
  model.Emplace<MaxPool2d>(2);
  model.Emplace<Flatten>();
  model.Emplace<Dense>(2 * 2 * 2, 3, rng, "fc");
  return model;
}

TEST(SequentialTest, ForwardProducesLogitsShape) {
  core::Rng rng(1);
  Sequential model = MakeTinyCnn(rng);
  core::Tensor x = core::Tensor::UniformRandom({4, 1, 4, 4}, rng, 0, 1);
  core::Tensor y = model.Forward(x, false);
  EXPECT_EQ(y.shape(), core::Shape({4, 3}));
}

TEST(SequentialTest, ParamsAggregateAllLayers) {
  core::Rng rng(2);
  Sequential model = MakeTinyCnn(rng);
  const auto params = model.Params();
  ASSERT_EQ(params.size(), 4u);  // conv w+b, dense w+b
  EXPECT_EQ(params[0].name, "c1.weight");
  EXPECT_EQ(params[3].name, "fc.bias");
  EXPECT_GT(model.ParamCount(), 0);
}

TEST(SequentialTest, EndToEndGradientsMatchFiniteDifferences) {
  core::Rng rng(3);
  Sequential model = MakeTinyCnn(rng);
  core::Tensor input = core::Tensor::UniformRandom({2, 1, 4, 4}, rng, -1, 1);
  const std::vector<std::int64_t> labels{0, 2};
  SoftmaxCrossEntropy loss;

  const auto compute_loss = [&] {
    return loss.Forward(model.Forward(input, true), labels);
  };
  compute_loss();
  model.ZeroGrad();
  model.Backward(loss.Backward());

  for (auto& p : model.Params()) {
    fluid::testing::ExpectGradientsMatch(*p.value, *p.grad, compute_loss, 12);
  }
}

TEST(SequentialTest, AddNullLayerThrows) {
  Sequential model;
  EXPECT_THROW(model.Add(nullptr), core::Error);
}

TEST(SequentialTest, LayerAccessBoundsChecked) {
  core::Rng rng(4);
  Sequential model = MakeTinyCnn(rng);
  EXPECT_NO_THROW(model.layer(0));
  EXPECT_THROW(model.layer(99), core::Error);
}

TEST(SequentialTest, EmptySequentialIsIdentity) {
  Sequential model;
  core::Tensor x(core::Shape{2, 2}, {1, 2, 3, 4});
  core::Tensor y = model.Forward(x, false);
  EXPECT_EQ(y.at(3), 4.0F);
}

TEST(SequentialTest, ToStringListsLayers) {
  core::Rng rng(5);
  Sequential model = MakeTinyCnn(rng);
  const std::string s = model.ToString();
  EXPECT_NE(s.find("Conv2d"), std::string::npos);
  EXPECT_NE(s.find("Dense"), std::string::npos);
}

}  // namespace
}  // namespace fluid::nn
