#include "nn/softmax.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/tensor_ops.h"
#include "test_util.h"

namespace fluid::nn {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  core::Tensor logits(core::Shape{2, 3}, {1, 2, 3, -1, 0, 1});
  core::Tensor p = Softmax(logits);
  for (std::int64_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (std::int64_t c = 0; c < 3; ++c) sum += p({r, c});
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, InvariantToRowShift) {
  core::Tensor a(core::Shape{1, 3}, {1, 2, 3});
  core::Tensor b(core::Shape{1, 3}, {101, 102, 103});
  EXPECT_TRUE(core::AllClose(Softmax(a), Softmax(b), 1e-5F));
}

TEST(SoftmaxTest, StableForHugeLogits) {
  core::Tensor logits(core::Shape{1, 2}, {1000.0F, 999.0F});
  core::Tensor p = Softmax(logits);
  EXPECT_TRUE(std::isfinite(p.at(0)));
  EXPECT_GT(p.at(0), p.at(1));
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy loss;
  core::Tensor logits({4, 10});
  const double l = loss.Forward(logits, {0, 1, 2, 3});
  EXPECT_NEAR(l, std::log(10.0), 1e-5);
}

TEST(SoftmaxCrossEntropyTest, PerfectPredictionNearZeroLoss) {
  SoftmaxCrossEntropy loss;
  core::Tensor logits(core::Shape{1, 3}, {100.0F, 0.0F, 0.0F});
  EXPECT_NEAR(loss.Forward(logits, {0}), 0.0, 1e-5);
}

TEST(SoftmaxCrossEntropyTest, GradientIsProbsMinusOnehotOverN) {
  SoftmaxCrossEntropy loss;
  core::Tensor logits(core::Shape{2, 3}, {1, 2, 3, 3, 2, 1});
  loss.Forward(logits, {2, 0});
  core::Tensor g = loss.Backward();
  core::Tensor p = Softmax(logits);
  EXPECT_NEAR(g({0, 2}), (p({0, 2}) - 1.0F) / 2.0F, 1e-5F);
  EXPECT_NEAR(g({0, 0}), p({0, 0}) / 2.0F, 1e-5F);
  EXPECT_NEAR(g({1, 0}), (p({1, 0}) - 1.0F) / 2.0F, 1e-5F);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesFiniteDifferences) {
  SoftmaxCrossEntropy loss;
  core::Rng rng(8);
  core::Tensor logits = core::Tensor::UniformRandom({3, 4}, rng, -2, 2);
  const std::vector<std::int64_t> labels{1, 3, 0};
  loss.Forward(logits, labels);
  core::Tensor g = loss.Backward();
  fluid::testing::ExpectGradientsMatch(
      logits, g, [&] { return loss.Forward(logits, labels); });
}

TEST(SoftmaxCrossEntropyTest, RejectsBadLabels) {
  SoftmaxCrossEntropy loss;
  core::Tensor logits({1, 3});
  EXPECT_THROW(loss.Forward(logits, {3}), core::Error);
  EXPECT_THROW(loss.Forward(logits, {-1}), core::Error);
  EXPECT_THROW(loss.Forward(logits, {0, 1}), core::Error);
}

TEST(SoftmaxCrossEntropyTest, BackwardBeforeForwardThrows) {
  SoftmaxCrossEntropy loss;
  EXPECT_THROW(loss.Backward(), core::Error);
}

}  // namespace
}  // namespace fluid::nn
