#include "nn/im2col.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"

namespace fluid::nn {
namespace {

TEST(Im2ColTest, OutExtentFormula) {
  EXPECT_EQ(ConvOutExtent(28, 3, 1, 1), 28);
  EXPECT_EQ(ConvOutExtent(28, 3, 1, 0), 26);
  EXPECT_EQ(ConvOutExtent(7, 3, 2, 1), 4);
  EXPECT_THROW(ConvOutExtent(2, 5, 1, 0), core::Error);
  EXPECT_THROW(ConvOutExtent(4, 3, 0, 0), core::Error);
}

TEST(Im2ColTest, IdentityKernelNoPadCopiesPixels) {
  // 1x1 kernel, stride 1, no pad: cols == input.
  const std::vector<float> input{1, 2, 3, 4};
  std::vector<float> cols(4);
  Im2Col(input, 1, 2, 2, 0, 1, 1, 1, 0, cols);
  EXPECT_EQ(cols, input);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  // Single pixel image, 3x3 kernel with pad 1: only the centre tap sees it.
  const std::vector<float> input{5.0F};
  std::vector<float> cols(9);
  Im2Col(input, 1, 1, 1, 0, 1, 3, 1, 1, cols);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(cols[static_cast<std::size_t>(i)], i == 4 ? 5.0F : 0.0F);
  }
}

TEST(Im2ColTest, ChannelSliceSelectsChannels) {
  // Two channels; take only the second.
  const std::vector<float> input{1, 2, 3, 4,   // channel 0
                                 5, 6, 7, 8};  // channel 1
  std::vector<float> cols(4);
  Im2Col(input, 2, 2, 2, 1, 2, 1, 1, 0, cols);
  EXPECT_EQ(cols, (std::vector<float>{5, 6, 7, 8}));
}

TEST(Im2ColTest, Col2ImIsAdjointOfIm2Col) {
  // <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property,
  // which is exactly what makes backward-by-col2im correct.
  core::Rng rng(99);
  const std::int64_t C = 3, H = 5, W = 4, K = 3, S = 1, P = 1;
  const std::int64_t OH = ConvOutExtent(H, K, S, P);
  const std::int64_t OW = ConvOutExtent(W, K, S, P);
  const std::int64_t cols_n = C * K * K * OH * OW;

  std::vector<float> x(static_cast<std::size_t>(C * H * W));
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> y(static_cast<std::size_t>(cols_n));
  for (auto& v : y) v = static_cast<float>(rng.Uniform(-1, 1));

  std::vector<float> cols(static_cast<std::size_t>(cols_n));
  Im2Col(x, C, H, W, 0, C, K, S, P, cols);
  std::vector<float> back(static_cast<std::size_t>(C * H * W), 0.0F);
  Col2Im(y, C, H, W, 0, C, K, S, P, back);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2ColTest, SizeMismatchThrows) {
  std::vector<float> input(4);
  std::vector<float> cols(3);  // wrong
  EXPECT_THROW(Im2Col(input, 1, 2, 2, 0, 1, 1, 1, 0, cols), core::Error);
  EXPECT_THROW(Im2Col(input, 1, 2, 2, 0, 2, 1, 1, 0, cols), core::Error);
}

TEST(Im2ColTest, StrideTwoDownsamples) {
  const std::vector<float> input{1, 2, 3,
                                 4, 5, 6,
                                 7, 8, 9};
  std::vector<float> cols(4);
  Im2Col(input, 1, 3, 3, 0, 1, 1, 2, 0, cols);
  EXPECT_EQ(cols, (std::vector<float>{1, 3, 7, 9}));
}

}  // namespace
}  // namespace fluid::nn
