#include "nn/im2col.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "quant/quantize.h"

namespace fluid::nn {
namespace {

TEST(Im2ColTest, OutExtentFormula) {
  EXPECT_EQ(ConvOutExtent(28, 3, 1, 1), 28);
  EXPECT_EQ(ConvOutExtent(28, 3, 1, 0), 26);
  EXPECT_EQ(ConvOutExtent(7, 3, 2, 1), 4);
  EXPECT_THROW(ConvOutExtent(2, 5, 1, 0), core::Error);
  EXPECT_THROW(ConvOutExtent(4, 3, 0, 0), core::Error);
}

TEST(Im2ColTest, IdentityKernelNoPadCopiesPixels) {
  // 1x1 kernel, stride 1, no pad: cols == input.
  const std::vector<float> input{1, 2, 3, 4};
  std::vector<float> cols(4);
  Im2Col(input, 1, 2, 2, 0, 1, 1, 1, 0, cols);
  EXPECT_EQ(cols, input);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  // Single pixel image, 3x3 kernel with pad 1: only the centre tap sees it.
  const std::vector<float> input{5.0F};
  std::vector<float> cols(9);
  Im2Col(input, 1, 1, 1, 0, 1, 3, 1, 1, cols);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(cols[static_cast<std::size_t>(i)], i == 4 ? 5.0F : 0.0F);
  }
}

TEST(Im2ColTest, ChannelSliceSelectsChannels) {
  // Two channels; take only the second.
  const std::vector<float> input{1, 2, 3, 4,   // channel 0
                                 5, 6, 7, 8};  // channel 1
  std::vector<float> cols(4);
  Im2Col(input, 2, 2, 2, 1, 2, 1, 1, 0, cols);
  EXPECT_EQ(cols, (std::vector<float>{5, 6, 7, 8}));
}

TEST(Im2ColTest, Col2ImIsAdjointOfIm2Col) {
  // <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property,
  // which is exactly what makes backward-by-col2im correct.
  core::Rng rng(99);
  const std::int64_t C = 3, H = 5, W = 4, K = 3, S = 1, P = 1;
  const std::int64_t OH = ConvOutExtent(H, K, S, P);
  const std::int64_t OW = ConvOutExtent(W, K, S, P);
  const std::int64_t cols_n = C * K * K * OH * OW;

  std::vector<float> x(static_cast<std::size_t>(C * H * W));
  for (auto& v : x) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> y(static_cast<std::size_t>(cols_n));
  for (auto& v : y) v = static_cast<float>(rng.Uniform(-1, 1));

  std::vector<float> cols(static_cast<std::size_t>(cols_n));
  Im2Col(x, C, H, W, 0, C, K, S, P, cols);
  std::vector<float> back(static_cast<std::size_t>(C * H * W), 0.0F);
  Col2Im(y, C, H, W, 0, C, K, S, P, back);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2ColTest, SizeMismatchThrows) {
  std::vector<float> input(4);
  std::vector<float> cols(3);  // wrong
  EXPECT_THROW(Im2Col(input, 1, 2, 2, 0, 1, 1, 1, 0, cols), core::Error);
  EXPECT_THROW(Im2Col(input, 1, 2, 2, 0, 2, 1, 1, 0, cols), core::Error);
}

TEST(Im2ColTest, StrideTwoDownsamples) {
  const std::vector<float> input{1, 2, 3,
                                 4, 5, 6,
                                 7, 8, 9};
  std::vector<float> cols(4);
  Im2Col(input, 1, 3, 3, 0, 1, 1, 2, 0, cols);
  EXPECT_EQ(cols, (std::vector<float>{1, 3, 7, 9}));
}

TEST(Im2ColTest, FusedLayoutIsPerSampleColumnsInterleavedByPatchRow) {
  // The fused buffer must hold, for each patch row p, every sample's area
  // segment back to back: fused[p][n*area + a] == batched[n][p][a].
  const std::int64_t batch = 5, channels = 3, h = 6, w = 4;
  const std::int64_t kernel = 3, stride = 2, pad = 1;
  core::Rng rng(42);
  std::vector<float> input(
      static_cast<std::size_t>(batch * channels * h * w));
  for (auto& v : input) v = static_cast<float>(rng.Uniform(-1, 1));

  const std::int64_t out_h = ConvOutExtent(h, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(w, kernel, stride, pad);
  const std::int64_t area = out_h * out_w;
  const std::int64_t patch = channels * kernel * kernel;

  std::vector<float> batched(static_cast<std::size_t>(batch * patch * area));
  std::vector<float> fused(static_cast<std::size_t>(patch * batch * area));
  Im2ColBatched(input, batch, channels, h, w, 0, channels, kernel, stride,
                pad, batched);
  Im2ColFused(input, batch, channels, h, w, 0, channels, kernel, stride, pad,
              fused);

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t p = 0; p < patch; ++p) {
      for (std::int64_t i = 0; i < area; ++i) {
        ASSERT_EQ(
            fused[static_cast<std::size_t>(p * batch * area + n * area + i)],
            batched[static_cast<std::size_t>((n * patch + p) * area + i)])
            << "n=" << n << " p=" << p << " i=" << i;
      }
    }
  }
}

// The single-quantize int8 conv path lowers an already-quantized input
// directly into int8 columns. That is only sound if it produces the very
// codes quantize-after-fp32-lowering would: lowering just copies values
// (so per-element quantization commutes with it) and the zero padding it
// writes equals QuantizeValue(0) == 0. Exercise padding, stride and a
// channel slice, and require bitwise equality.
TEST(Im2ColTest, Int8FusedLoweringMatchesQuantizeAfterFp32Lowering) {
  core::Rng rng(7);
  const std::int64_t batch = 2, channels = 3, h = 5, w = 5;
  const std::int64_t kernel = 3, stride = 2, pad = 1;
  const std::int64_t c_lo = 1, c_hi = 3;
  core::Tensor x =
      core::Tensor::UniformRandom({batch, channels, h, w}, rng, -2, 2);

  const std::int64_t out_h = ConvOutExtent(h, kernel, stride, pad);
  const std::int64_t out_w = ConvOutExtent(w, kernel, stride, pad);
  const std::int64_t patch = (c_hi - c_lo) * kernel * kernel;
  const std::size_t cols_n =
      static_cast<std::size_t>(patch * batch * out_h * out_w);

  // Reference: lower in fp32, then quantize every column element with the
  // whole-input scale.
  std::vector<float> cols_f(cols_n);
  Im2ColFused(x.data(), batch, channels, h, w, c_lo, c_hi, kernel, stride,
              pad, cols_f);
  const float scale = quant::AbsMaxScale(x.data());
  const float inv_scale = 1.0F / scale;

  // Under test: quantize the input once, lower the int8 codes directly.
  const quant::QuantizedTensor qx = quant::QuantizeTensor(x, scale);
  std::vector<std::int8_t> cols_q(cols_n);
  Im2ColFusedInt8(qx.data, batch, channels, h, w, c_lo, c_hi, kernel,
                  stride, pad, cols_q);

  for (std::size_t i = 0; i < cols_n; ++i) {
    ASSERT_EQ(cols_q[i], quant::QuantizeValue(cols_f[i], inv_scale))
        << "column element " << i;
  }
}

}  // namespace
}  // namespace fluid::nn
