#include "nn/conv2d.h"

#include <tuple>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/tensor_ops.h"
#include "nn/im2col.h"
#include "nn/softmax.h"
#include "test_util.h"

namespace fluid::nn {
namespace {

// Direct (nested-loop) convolution for cross-checking the im2col path.
core::Tensor NaiveConv(const core::Tensor& input, const core::Tensor& weight,
                       const core::Tensor& bias, std::int64_t stride,
                       std::int64_t pad) {
  const auto& is = input.shape();
  const auto& ws = weight.shape();
  const std::int64_t N = is[0], C = is[1], H = is[2], W = is[3];
  const std::int64_t Co = ws[0], K = ws[2];
  const std::int64_t OH = ConvOutExtent(H, K, stride, pad);
  const std::int64_t OW = ConvOutExtent(W, K, stride, pad);
  core::Tensor out({N, Co, OH, OW});
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t o = 0; o < Co; ++o) {
      for (std::int64_t oy = 0; oy < OH; ++oy) {
        for (std::int64_t ox = 0; ox < OW; ++ox) {
          double acc = bias.at(o);
          for (std::int64_t c = 0; c < C; ++c) {
            for (std::int64_t ky = 0; ky < K; ++ky) {
              for (std::int64_t kx = 0; kx < K; ++kx) {
                const std::int64_t iy = oy * stride + ky - pad;
                const std::int64_t ix = ox * stride + kx - pad;
                if (iy < 0 || iy >= H || ix < 0 || ix >= W) continue;
                acc += input({n, c, iy, ix}) *
                       weight({o, c, ky, kx});
              }
            }
          }
          out({n, o, oy, ox}) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

TEST(Conv2dTest, ForwardMatchesNaiveReference) {
  core::Rng rng(1);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  core::Tensor input = core::Tensor::UniformRandom({2, 3, 6, 5}, rng, -1, 1);
  core::Tensor out = conv.Forward(input, false);
  core::Tensor expected =
      NaiveConv(input, conv.weight(), conv.bias(), 1, 1);
  EXPECT_LT(core::MaxAbsDiff(out, expected), 1e-4F);
}

TEST(Conv2dTest, ForwardStride2NoPadMatchesNaive) {
  core::Rng rng(2);
  Conv2d conv(2, 3, 3, 2, 0, rng);
  core::Tensor input = core::Tensor::UniformRandom({1, 2, 9, 9}, rng, -1, 1);
  core::Tensor out = conv.Forward(input, false);
  core::Tensor expected =
      NaiveConv(input, conv.weight(), conv.bias(), 2, 0);
  ASSERT_EQ(out.shape(), expected.shape());
  EXPECT_LT(core::MaxAbsDiff(out, expected), 1e-4F);
}

TEST(Conv2dTest, RejectsWrongChannelCount) {
  core::Rng rng(3);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.Forward(core::Tensor({1, 2, 6, 6}), false), core::Error);
}

TEST(Conv2dTest, BackwardWithoutForwardThrows) {
  core::Rng rng(4);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  EXPECT_THROW(conv.Backward(core::Tensor({1, 1, 4, 4})), core::Error);
}

TEST(Conv2dTest, GradientsMatchFiniteDifferences) {
  core::Rng rng(5);
  Conv2d conv(2, 3, 3, 1, 1, rng, "c");
  core::Tensor input = core::Tensor::UniformRandom({2, 2, 5, 5}, rng, -1, 1);
  const std::vector<std::int64_t> labels{1, 2};

  SoftmaxCrossEntropy loss;
  const auto compute_loss = [&] {
    core::Tensor h = conv.Forward(input, true);
    // Reduce the conv output to [N, classes] by summing spatial dims of the
    // first 3 channels — a fixed linear readout keeps the check focused on
    // the conv layer.
    const auto& s = h.shape();
    core::Tensor logits({s[0], s[1]});
    for (std::int64_t n = 0; n < s[0]; ++n) {
      for (std::int64_t c = 0; c < s[1]; ++c) {
        double acc = 0;
        for (std::int64_t y = 0; y < s[2]; ++y) {
          for (std::int64_t x = 0; x < s[3]; ++x) acc += h({n, c, y, x});
        }
        logits({n, c}) = static_cast<float>(acc);
      }
    }
    return loss.Forward(logits, labels);
  };

  // One full forward+backward to populate analytic gradients.
  compute_loss();
  core::Tensor grad_logits = loss.Backward();
  // Expand the readout gradient back to the conv output shape.
  core::Tensor h = conv.Forward(input, true);
  core::Tensor grad_h(h.shape());
  const auto& s = h.shape();
  for (std::int64_t n = 0; n < s[0]; ++n) {
    for (std::int64_t c = 0; c < s[1]; ++c) {
      for (std::int64_t y = 0; y < s[2]; ++y) {
        for (std::int64_t x = 0; x < s[3]; ++x) {
          grad_h({n, c, y, x}) = grad_logits({n, c});
        }
      }
    }
  }
  conv.ZeroGrad();
  core::Tensor grad_input = conv.Backward(grad_h);

  auto params = conv.Params();
  ASSERT_EQ(params.size(), 2u);
  fluid::testing::ExpectGradientsMatch(*params[0].value, *params[0].grad,
                                       compute_loss);
  fluid::testing::ExpectGradientsMatch(*params[1].value, *params[1].grad,
                                       compute_loss);
  fluid::testing::ExpectGradientsMatch(input, grad_input, compute_loss);
}

TEST(Conv2dTest, ParamsAreNamedAndShaped) {
  core::Rng rng(6);
  Conv2d conv(2, 4, 3, 1, 1, rng, "conv7");
  const auto params = conv.Params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "conv7.weight");
  EXPECT_EQ(params[0].value->shape(), core::Shape({4, 2, 3, 3}));
  EXPECT_EQ(params[1].name, "conv7.bias");
  EXPECT_EQ(params[1].value->shape(), core::Shape({4}));
}

TEST(Conv2dTest, BatchedForwardStressedAtFourThreadsStaysBitwiseStable) {
  // Repeats the 4-thread batched forward many times and compares every
  // run against the 1-thread result. One pass is not enough: on a busy
  // or single-core host the calling thread can drain a small parallel
  // region before any pool worker wakes, hiding worker-only bugs (this
  // caught a lambda that named a thread_local — which is NOT captured and
  // resolves to the worker's own empty instance — in the fused forward's
  // bias scatter).
  const int saved = core::NumThreads();
  core::Rng rng(23);
  Conv2d conv(3, 5, 3, 1, 1, rng, "c");
  core::Tensor input = core::Tensor::UniformRandom({9, 3, 8, 8}, rng, -1, 1);
  core::SetNumThreads(1);
  const core::Tensor ref = conv.Forward(input, false);
  core::SetNumThreads(4);
  for (int i = 0; i < 200; ++i) {
    const core::Tensor out = conv.Forward(input, false);
    ASSERT_EQ(core::MaxAbsDiff(ref, out), 0.0F) << "iteration " << i;
  }
  core::SetNumThreads(saved);
}

TEST(Conv2dTest, ForwardAndBackwardBitwiseStableAcrossThreadCounts) {
  const int saved = core::NumThreads();
  auto run = [](int threads) {
    core::SetNumThreads(threads);
    core::Rng rng(11);
    Conv2d conv(3, 5, 3, 1, 1, rng, "c");
    core::Tensor input = core::Tensor::UniformRandom({9, 3, 8, 8}, rng, -1, 1);
    core::Tensor out = conv.Forward(input, true);
    core::Tensor gin =
        conv.Backward(core::Tensor::Ones({9, 5, 8, 8}));
    return std::tuple<core::Tensor, core::Tensor, core::Tensor>(
        std::move(out), std::move(gin), conv.Params()[0].grad->Clone());
  };
  const auto [out1, gin1, gw1] = run(1);
  const auto [out4, gin4, gw4] = run(4);
  core::SetNumThreads(saved);
  EXPECT_EQ(core::MaxAbsDiff(out1, out4), 0.0F);
  EXPECT_EQ(core::MaxAbsDiff(gin1, gin4), 0.0F);
  EXPECT_EQ(core::MaxAbsDiff(gw1, gw4), 0.0F);
}

TEST(Conv2dTest, GradAccumulatesAcrossBackwards) {
  core::Rng rng(7);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  core::Tensor input = core::Tensor::UniformRandom({1, 1, 4, 4}, rng, -1, 1);
  core::Tensor g = core::Tensor::Ones({1, 1, 4, 4});
  conv.Forward(input, true);
  conv.Backward(g);
  const float after_one = conv.Params()[0].grad->at(4);
  conv.Forward(input, true);
  conv.Backward(g);
  EXPECT_NEAR(conv.Params()[0].grad->at(4), 2 * after_one, 1e-4F);
}

}  // namespace
}  // namespace fluid::nn
