#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::nn {
namespace {

ParamRef MakeParam(const std::string& name, core::Tensor& value,
                   core::Tensor& grad) {
  return {name, &value, &grad};
}

TEST(SgdTest, PlainStepDescendsGradient) {
  core::Tensor w(core::Shape{2}, {1.0F, 1.0F});
  core::Tensor g(core::Shape{2}, {0.5F, -0.5F});
  Sgd sgd(0.1F, /*momentum=*/0.0F);
  sgd.Step({MakeParam("w", w, g)});
  EXPECT_NEAR(w.at(0), 0.95F, 1e-6F);
  EXPECT_NEAR(w.at(1), 1.05F, 1e-6F);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
  core::Tensor w(core::Shape{1}, {0.0F});
  core::Tensor g(core::Shape{1}, {1.0F});
  Sgd sgd(1.0F, 0.9F);
  sgd.Step({MakeParam("w", w, g)});
  EXPECT_NEAR(w.at(0), -1.0F, 1e-6F);       // v=1
  sgd.Step({MakeParam("w", w, g)});
  EXPECT_NEAR(w.at(0), -2.9F, 1e-6F);       // v=1.9
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
  core::Tensor w(core::Shape{1}, {10.0F});
  core::Tensor g(core::Shape{1}, {0.0F});
  Sgd sgd(0.1F, 0.0F, /*weight_decay=*/0.1F);
  sgd.Step({MakeParam("w", w, g)});
  EXPECT_LT(w.at(0), 10.0F);
}

TEST(SgdTest, MaskFreezesElements) {
  core::Tensor w(core::Shape{3}, {1.0F, 1.0F, 1.0F});
  core::Tensor g(core::Shape{3}, {1.0F, 1.0F, 1.0F});
  Sgd sgd(0.5F, 0.0F);
  sgd.SetMask("w", core::Tensor(core::Shape{3}, {1.0F, 0.0F, 1.0F}));
  sgd.Step({MakeParam("w", w, g)});
  EXPECT_NEAR(w.at(0), 0.5F, 1e-6F);
  EXPECT_EQ(w.at(1), 1.0F);  // frozen bit-exactly
  EXPECT_NEAR(w.at(2), 0.5F, 1e-6F);
}

TEST(SgdTest, ClearingMaskUnfreezes) {
  core::Tensor w(core::Shape{1}, {1.0F});
  core::Tensor g(core::Shape{1}, {1.0F});
  Sgd sgd(0.5F, 0.0F);
  sgd.SetMask("w", core::Tensor(core::Shape{1}, {0.0F}));
  sgd.Step({MakeParam("w", w, g)});
  EXPECT_EQ(w.at(0), 1.0F);
  sgd.SetMask("w", core::Tensor{});  // clears
  sgd.Step({MakeParam("w", w, g)});
  EXPECT_NEAR(w.at(0), 0.5F, 1e-6F);
}

TEST(SgdTest, MaskShapeMismatchThrows) {
  core::Tensor w(core::Shape{2}, {1, 1});
  core::Tensor g(core::Shape{2}, {1, 1});
  Sgd sgd(0.1F);
  sgd.SetMask("w", core::Tensor({3}));
  EXPECT_THROW(sgd.Step({MakeParam("w", w, g)}), core::Error);
}

TEST(AdamTest, ConvergesOnSimpleQuadratic) {
  // Minimise f(w) = w² from w=1. Adam oscillates locally but must converge.
  core::Tensor w(core::Shape{1}, {1.0F});
  core::Tensor g({1});
  Adam adam(0.05F);
  for (int i = 0; i < 200; ++i) {
    g.at(0) = 2.0F * w.at(0);
    adam.Step({MakeParam("w", w, g)});
  }
  EXPECT_LT(std::fabs(w.at(0)), 0.05F);
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // With bias correction, the very first Adam step is ≈ lr · sign(grad).
  core::Tensor w(core::Shape{1}, {0.0F});
  core::Tensor g(core::Shape{1}, {3.0F});
  Adam adam(0.01F);
  adam.Step({MakeParam("w", w, g)});
  EXPECT_NEAR(w.at(0), -0.01F, 1e-4F);
}

TEST(AdamTest, RespectsMask) {
  core::Tensor w(core::Shape{2}, {1.0F, 1.0F});
  core::Tensor g(core::Shape{2}, {1.0F, 1.0F});
  Adam adam(0.1F);
  adam.SetMask("w", core::Tensor(core::Shape{2}, {0.0F, 1.0F}));
  adam.Step({MakeParam("w", w, g)});
  EXPECT_EQ(w.at(0), 1.0F);
  EXPECT_LT(w.at(1), 1.0F);
}

TEST(StepLrScheduleTest, DecaysEveryStep) {
  StepLrSchedule sched(1.0F, 10, 0.5F);
  EXPECT_EQ(sched.LrAt(0), 1.0F);
  EXPECT_EQ(sched.LrAt(9), 1.0F);
  EXPECT_EQ(sched.LrAt(10), 0.5F);
  EXPECT_EQ(sched.LrAt(25), 0.25F);
}

}  // namespace
}  // namespace fluid::nn
