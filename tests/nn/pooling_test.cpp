#include "nn/pooling.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::nn {
namespace {

TEST(MaxPool2dTest, PicksWindowMaxima) {
  MaxPool2d pool(2);
  core::Tensor x(core::Shape{1, 1, 4, 4},
                 {1,  2,  5,  4,
                  3,  0,  1,  2,
                  9,  8,  0,  0,
                  7,  6,  0, 10});
  core::Tensor y = pool.Forward(x, false);
  ASSERT_EQ(y.shape(), core::Shape({1, 1, 2, 2}));
  EXPECT_EQ(y.at(0), 3.0F);
  EXPECT_EQ(y.at(1), 5.0F);
  EXPECT_EQ(y.at(2), 9.0F);
  EXPECT_EQ(y.at(3), 10.0F);
}

TEST(MaxPool2dTest, OddExtentFloorsAndIgnoresTail) {
  MaxPool2d pool(2);
  // 5x5 input → 2x2 output; row/col 4 are never read.
  core::Tensor x({1, 1, 5, 5});
  x({0, 0, 4, 4}) = 100.0F;
  core::Tensor y = pool.Forward(x, false);
  ASSERT_EQ(y.shape(), core::Shape({1, 1, 2, 2}));
  for (const float v : y.data()) EXPECT_EQ(v, 0.0F);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  core::Tensor x(core::Shape{1, 1, 2, 2}, {1, 4, 2, 3});
  pool.Forward(x, true);
  core::Tensor g(core::Shape{1, 1, 1, 1}, {5.0F});
  core::Tensor gi = pool.Backward(g);
  EXPECT_EQ(gi.at(0), 0.0F);
  EXPECT_EQ(gi.at(1), 5.0F);  // the max location
  EXPECT_EQ(gi.at(2), 0.0F);
  EXPECT_EQ(gi.at(3), 0.0F);
}

TEST(MaxPool2dTest, TieBreaksToFirstSeen) {
  MaxPool2d pool(2);
  core::Tensor x(core::Shape{1, 1, 2, 2}, {7, 7, 7, 7});
  pool.Forward(x, true);
  core::Tensor g(core::Shape{1, 1, 1, 1}, {1.0F});
  core::Tensor gi = pool.Backward(g);
  EXPECT_EQ(gi.at(0), 1.0F);
  EXPECT_EQ(gi.at(1) + gi.at(2) + gi.at(3), 0.0F);
}

TEST(MaxPool2dTest, WindowLargerThanInputThrows) {
  MaxPool2d pool(4);
  EXPECT_THROW(pool.Forward(core::Tensor({1, 1, 2, 2}), false), core::Error);
}

TEST(MaxPool2dTest, BackwardWithoutForwardThrows) {
  MaxPool2d pool(2);
  EXPECT_THROW(pool.Backward(core::Tensor({1, 1, 1, 1})), core::Error);
}

TEST(MaxPool2dTest, PerChannelIndependence) {
  MaxPool2d pool(2);
  core::Tensor x({1, 2, 2, 2});
  x({0, 0, 0, 0}) = 1.0F;
  x({0, 1, 1, 1}) = 2.0F;
  core::Tensor y = pool.Forward(x, false);
  EXPECT_EQ(y({0, 0, 0, 0}), 1.0F);
  EXPECT_EQ(y({0, 1, 0, 0}), 2.0F);
}

}  // namespace
}  // namespace fluid::nn
