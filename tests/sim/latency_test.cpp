#include "sim/latency.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "train/model_zoo.h"

namespace fluid::sim {
namespace {

TEST(LatencyTest, MeasuresASleepWithinTolerance) {
  const auto m = MeasureLatency(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); },
      /*iters=*/5, /*warmup=*/1);
  EXPECT_EQ(m.iterations, 5);
  EXPECT_GE(m.mean_s, 0.002);
  EXPECT_LT(m.mean_s, 0.05);  // generous: CI boxes stall
  EXPECT_LE(m.min_s, m.mean_s);
  EXPECT_GE(m.max_s, m.mean_s);
}

TEST(LatencyTest, RequiresPositiveIterations) {
  EXPECT_THROW(MeasureLatency([] {}, 0), core::Error);
}

TEST(LatencyTest, ModelLatencyScalesWithWidth) {
  slim::FluidNetConfig cfg;
  core::Rng rng(1);
  nn::Sequential narrow = train::BuildConvNet(cfg, 4, rng);
  nn::Sequential wide = train::BuildConvNet(cfg, 16, rng);
  core::Tensor sample({1, 1, 28, 28});
  const auto tn = MeasureModelLatency(narrow, sample, 10);
  const auto tw = MeasureModelLatency(wide, sample, 10);
  EXPECT_GT(tw.mean_s, tn.mean_s);
}

TEST(LatencyTest, SubnetLatencyOrdersWithSliceWidth) {
  slim::FluidModel model = slim::FluidModel::PaperDefault(3);
  core::Tensor sample({1, 1, 28, 28});
  const auto t25 = MeasureSubnetLatency(
      model, model.family().ByName("25%"), sample, 10);
  const auto t100 = MeasureSubnetLatency(
      model, model.family().ByName("100%"), sample, 10);
  EXPECT_GT(t100.mean_s, t25.mean_s);
}

}  // namespace
}  // namespace fluid::sim
