#include "sim/pipeline_sim.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::sim {
namespace {

PipelineParams MakeParams(double front, double back, std::int64_t bytes,
                          double link_latency, double bandwidth) {
  PipelineParams p;
  p.front_latency_s = front;
  p.back_latency_s = back;
  p.cut_bytes = bytes;
  p.link.latency_s = link_latency;
  p.link.bandwidth_bytes_per_s = bandwidth;
  return p;
}

TEST(LinkModelTest, TransferTimeIsLatencyPlusSerialization) {
  LinkModel link{0.010, 1e6};
  EXPECT_DOUBLE_EQ(link.TransferTime(0), 0.010);
  EXPECT_DOUBLE_EQ(link.TransferTime(1000000), 1.010);
}

TEST(ComputeProfileTest, LatencyScalesWithFlopsAndSpeed) {
  ComputeProfile p{1e9, 1e-4, 1.0};
  EXPECT_DOUBLE_EQ(p.LatencyFor(1e9), 1.0 + 1e-4);
  p.speed_factor = 2.0;
  EXPECT_DOUBLE_EQ(p.LatencyFor(1e9), 0.5 + 1e-4);
}

TEST(SequentialPipelineTest, PaperFormulaSumOfLatencies) {
  const auto p = MakeParams(0.030, 0.040, 1000, 0.010, 1e6);
  const auto r = SequentialPipelineThroughput(p);
  // 0.030 + (0.010 + 0.001) + 0.040 = 0.081 s per image.
  EXPECT_NEAR(r.mean_latency_s, 0.081, 1e-9);
  EXPECT_NEAR(r.throughput_img_per_s, 1.0 / 0.081, 1e-6);
}

TEST(PipelinedSimTest, ThroughputBoundedByBottleneckStage) {
  const auto p = MakeParams(0.050, 0.020, 0, 0.010, 1e9);
  const auto r = SimulatePipelined(p, 400);
  // Steady state: the 50 ms front stage is the bottleneck → 20 img/s.
  EXPECT_NEAR(r.throughput_img_per_s, 20.0, 0.5);
  // Latency per image is the full traversal.
  EXPECT_NEAR(r.mean_latency_s, 0.080, 0.002);
}

TEST(PipelinedSimTest, OverlapBeatsStoreAndForward) {
  const auto p = MakeParams(0.030, 0.030, 100000, 0.010, 1e7);
  const auto seq = SequentialPipelineThroughput(p);
  const auto pip = SimulatePipelined(p, 300);
  EXPECT_GT(pip.throughput_img_per_s, seq.throughput_img_per_s * 1.5);
}

TEST(PipelinedSimTest, LinkBoundWhenBandwidthTiny) {
  const auto p = MakeParams(0.001, 0.001, 1000000, 0.0, 1e6);  // 1 s transfer
  const auto r = SimulatePipelined(p, 100);
  EXPECT_NEAR(r.throughput_img_per_s, 1.0, 0.05);
}

TEST(IndependentParallelTest, RatesAdd) {
  const double lat[2] = {0.1, 0.05};
  EXPECT_DOUBLE_EQ(IndependentParallelThroughput(lat, 2), 10.0 + 20.0);
  const double one[1] = {0.25};
  EXPECT_DOUBLE_EQ(IndependentParallelThroughput(one, 1), 4.0);
}

TEST(IndependentParallelTest, RejectsNonPositiveLatency) {
  const double bad[1] = {0.0};
  EXPECT_THROW(IndependentParallelThroughput(bad, 1), core::Error);
}

TEST(PipelinedSimTest, InvalidImageCountThrows) {
  const auto p = MakeParams(0.01, 0.01, 0, 0.0, 1e9);
  EXPECT_THROW(SimulatePipelined(p, 0), core::Error);
}

}  // namespace
}  // namespace fluid::sim
