#include "sim/queue_sim.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::sim {
namespace {

QueueSimOptions Base(double rate, std::vector<double> services) {
  QueueSimOptions o;
  o.arrival_rate = rate;
  o.service_times_s = std::move(services);
  o.arrivals = 4000;
  o.seed = 7;
  return o;
}

TEST(QueueSimTest, LightLoadSojournNearServiceTime) {
  // At 10% utilization queueing is negligible.
  const auto r = SimulateQueue(Base(1.0, {0.1}));
  EXPECT_EQ(r.completed, 4000);
  EXPECT_NEAR(r.mean_sojourn_s, 0.105, 0.02);  // M/D/1 adds ~ρ·s/2(1-ρ)
  EXPECT_NEAR(r.utilization, 0.1, 0.02);
  EXPECT_EQ(r.dropped, 0);
}

TEST(QueueSimTest, ThroughputTracksOfferedLoadBelowCapacity) {
  const auto r = SimulateQueue(Base(5.0, {0.1}));  // capacity 10
  EXPECT_NEAR(r.throughput_img_per_s, 5.0, 0.4);
}

TEST(QueueSimTest, SaturatedServerCapsThroughputAtServiceRate) {
  const auto r = SimulateQueue(Base(50.0, {0.1}));  // capacity 10
  EXPECT_NEAR(r.throughput_img_per_s, 10.0, 0.3);
  EXPECT_NEAR(r.utilization, 1.0, 0.02);
  // Sojourn grows far beyond the bare service time.
  EXPECT_GT(r.mean_sojourn_s, 1.0);
}

TEST(QueueSimTest, LatencyIncreasesMonotonicallyWithLoad) {
  double prev = 0.0;
  for (const double load : {2.0, 6.0, 9.0, 9.9}) {
    const auto r = SimulateQueue(Base(load, {0.1}));
    EXPECT_GE(r.mean_sojourn_s, prev * 0.95) << "load " << load;
    prev = r.mean_sojourn_s;
  }
}

TEST(QueueSimTest, TwoServersDoubleCapacity) {
  const auto one = SimulateQueue(Base(25.0, {0.1}));
  const auto two = SimulateQueue(Base(25.0, {0.1, 0.1}));
  EXPECT_NEAR(one.throughput_img_per_s, 10.0, 0.3);
  EXPECT_NEAR(two.throughput_img_per_s, 20.0, 0.5);
}

TEST(QueueSimTest, HeterogeneousServersShareWork) {
  // Fast server (0.05 s) + slow server (0.2 s): capacity 25 img/s.
  const auto r = SimulateQueue(Base(40.0, {0.05, 0.2}));
  EXPECT_NEAR(r.throughput_img_per_s, 25.0, 1.0);
}

TEST(QueueSimTest, BoundedQueueDropsOverflow) {
  auto o = Base(100.0, {0.1});
  o.queue_capacity = 5;
  const auto r = SimulateQueue(o);
  EXPECT_GT(r.dropped, 0);
  EXPECT_EQ(r.completed + r.dropped, 4000);
  // Served latency stays bounded by the short queue.
  EXPECT_LT(r.p99_sojourn_s, 0.1 * 8);
}

TEST(QueueSimTest, PercentilesOrdered) {
  const auto r = SimulateQueue(Base(9.0, {0.1}));
  EXPECT_LE(r.p50_sojourn_s, r.p99_sojourn_s);
  EXPECT_LE(r.mean_sojourn_s, r.p99_sojourn_s);
  EXPECT_GE(r.p50_sojourn_s, 0.1 - 1e-9);  // can't beat the service time
}

TEST(QueueSimTest, DeterministicInSeed) {
  const auto a = SimulateQueue(Base(9.0, {0.1}));
  const auto b = SimulateQueue(Base(9.0, {0.1}));
  EXPECT_DOUBLE_EQ(a.mean_sojourn_s, b.mean_sojourn_s);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(QueueSimTest, InvalidOptionsThrow) {
  EXPECT_THROW(SimulateQueue(Base(0.0, {0.1})), core::Error);
  EXPECT_THROW(SimulateQueue(Base(1.0, {})), core::Error);
  EXPECT_THROW(SimulateQueue(Base(1.0, {-0.1})), core::Error);
  auto o = Base(1.0, {0.1});
  o.arrivals = 0;
  EXPECT_THROW(SimulateQueue(o), core::Error);
}

}  // namespace
}  // namespace fluid::sim
