#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace fluid::sim {
namespace {

/// A profile with round numbers chosen so the paper's relationships are
/// easy to verify: pipeline ≈ 11 img/s, 50% local ≈ 14 img/s, HT ≈ 28.
SystemProfile PaperLikeProfile() {
  SystemProfile p;
  p.static_front_latency_s = 0.040;
  p.static_back_latency_s = 0.035;
  p.static_cut_bytes = 3136;            // 16·7·7·4
  p.w50_latency_s = 0.070;              // → 14.3 img/s
  p.upper50_latency_s = 0.072;          // → 13.9 img/s
  p.acc_static = 0.989;
  p.acc_dynamic_full = 0.988;
  p.acc_dynamic_w50 = 0.976;
  p.acc_fluid_full = 0.992;
  p.acc_fluid_lower50 = 0.989;
  p.acc_fluid_upper50 = 0.988;
  p.link.latency_s = 0.012;
  p.link.bandwidth_bytes_per_s = 1.0e6;  // + ~3.1 ms per cut
  return p;
}

class ScenarioTest : public ::testing::Test {
 protected:
  ScenarioTest() : eval_(PaperLikeProfile()) {}
  Fig2Evaluator eval_;
};

TEST_F(ScenarioTest, StaticFailsWheneverEitherDeviceIsDown) {
  for (const auto a : {Availability::kOnlyMaster, Availability::kOnlyWorker}) {
    const auto r = eval_.Evaluate(DnnType::kStatic, a, Mode::kHighAccuracy);
    EXPECT_FALSE(r.operational);
    EXPECT_EQ(r.throughput_img_per_s, 0.0);
    EXPECT_EQ(r.accuracy, 0.0);
  }
}

TEST_F(ScenarioTest, StaticBothOnlineIsPipelineBound) {
  const auto r = eval_.Evaluate(DnnType::kStatic, Availability::kBothOnline,
                                Mode::kHighAccuracy);
  ASSERT_TRUE(r.operational);
  // 0.040 + (0.012 + 3136/1e6) + 0.035 = 0.090136 s → ~11.1 img/s.
  EXPECT_NEAR(r.throughput_img_per_s, 11.09, 0.05);
  EXPECT_DOUBLE_EQ(r.accuracy, 0.989);
}

TEST_F(ScenarioTest, DynamicSurvivesWorkerFailureOnly) {
  const auto master_only = eval_.Evaluate(
      DnnType::kDynamic, Availability::kOnlyMaster, Mode::kHighAccuracy);
  EXPECT_TRUE(master_only.operational);
  EXPECT_NEAR(master_only.throughput_img_per_s, 14.3, 0.1);
  EXPECT_DOUBLE_EQ(master_only.accuracy, 0.976);

  const auto worker_only = eval_.Evaluate(
      DnnType::kDynamic, Availability::kOnlyWorker, Mode::kHighAccuracy);
  EXPECT_FALSE(worker_only.operational);
}

TEST_F(ScenarioTest, FluidSurvivesEitherFailure) {
  const auto master_only = eval_.Evaluate(
      DnnType::kFluid, Availability::kOnlyMaster, Mode::kHighThroughput);
  EXPECT_TRUE(master_only.operational);
  EXPECT_DOUBLE_EQ(master_only.accuracy, 0.989);

  const auto worker_only = eval_.Evaluate(
      DnnType::kFluid, Availability::kOnlyWorker, Mode::kHighThroughput);
  EXPECT_TRUE(worker_only.operational);
  EXPECT_NEAR(worker_only.throughput_img_per_s, 13.9, 0.1);
  EXPECT_DOUBLE_EQ(worker_only.accuracy, 0.988);
}

TEST_F(ScenarioTest, FluidHtIsSumOfDeviceRates) {
  const auto ht = eval_.Evaluate(DnnType::kFluid, Availability::kBothOnline,
                                 Mode::kHighThroughput);
  EXPECT_NEAR(ht.throughput_img_per_s, 1.0 / 0.070 + 1.0 / 0.072, 1e-6);
  // Rate-weighted accuracy sits between the two sub-networks'.
  EXPECT_GT(ht.accuracy, 0.988);
  EXPECT_LT(ht.accuracy, 0.989);
}

TEST_F(ScenarioTest, FluidHaMatchesStaticPipelineThroughputWithBetterAccuracy) {
  const auto ha = eval_.Evaluate(DnnType::kFluid, Availability::kBothOnline,
                                 Mode::kHighAccuracy);
  const auto st = eval_.Evaluate(DnnType::kStatic, Availability::kBothOnline,
                                 Mode::kHighAccuracy);
  EXPECT_DOUBLE_EQ(ha.throughput_img_per_s, st.throughput_img_per_s);
  EXPECT_GT(ha.accuracy, st.accuracy);  // the paper's regularization bonus
}

TEST_F(ScenarioTest, PaperHeadlineRatiosHold) {
  const auto st = eval_.Evaluate(DnnType::kStatic, Availability::kBothOnline,
                                 Mode::kHighAccuracy);
  const auto dyn_ht = eval_.Evaluate(
      DnnType::kDynamic, Availability::kBothOnline, Mode::kHighThroughput);
  const auto fl_ht = eval_.Evaluate(
      DnnType::kFluid, Availability::kBothOnline, Mode::kHighThroughput);
  // Fluid HT ≈ 2.5× Static and ≈ 2× Dynamic (paper abstract).
  EXPECT_NEAR(fl_ht.throughput_img_per_s / st.throughput_img_per_s, 2.5, 0.2);
  EXPECT_NEAR(fl_ht.throughput_img_per_s / dyn_ht.throughput_img_per_s, 2.0,
              0.1);
}

TEST_F(ScenarioTest, HeterogeneousSpeedsScaleThroughput) {
  SystemProfile p = PaperLikeProfile();
  p.worker_speed = 2.0;
  Fig2Evaluator fast_worker(p);
  const auto ht = fast_worker.Evaluate(
      DnnType::kFluid, Availability::kBothOnline, Mode::kHighThroughput);
  EXPECT_NEAR(ht.throughput_img_per_s, 1.0 / 0.070 + 2.0 / 0.072, 1e-6);
}

TEST_F(ScenarioTest, FullGridCoversAllCells) {
  const auto rows = eval_.FullGrid();
  // Static: 3 cells; Dynamic: 4 (HA+HT when both online); Fluid: 4.
  EXPECT_EQ(rows.size(), 11u);
  const std::string table = FormatFig2Table(rows);
  EXPECT_NE(table.find("Static"), std::string::npos);
  EXPECT_NE(table.find("Fluid"), std::string::npos);
  EXPECT_NE(table.find("img/s"), std::string::npos);
}

TEST(ScenarioNamesTest, EnumsHaveStableNames) {
  EXPECT_EQ(DnnTypeName(DnnType::kStatic), "Static");
  EXPECT_EQ(ModeName(Mode::kHighThroughput), "HT");
  EXPECT_EQ(AvailabilityName(Availability::kOnlyWorker), "Only Worker");
}

}  // namespace
}  // namespace fluid::sim
