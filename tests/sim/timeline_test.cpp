#include "sim/timeline.h"

#include <gtest/gtest.h>

namespace fluid::sim {
namespace {

SystemProfile SimpleProfile() {
  SystemProfile p;
  p.static_front_latency_s = 0.05;
  p.static_back_latency_s = 0.05;
  p.static_cut_bytes = 0;
  p.w50_latency_s = 0.1;      // 10 img/s
  p.upper50_latency_s = 0.1;  // 10 img/s
  p.acc_static = 0.99;
  p.acc_dynamic_full = 0.98;
  p.acc_dynamic_w50 = 0.95;
  p.acc_fluid_full = 0.99;
  p.acc_fluid_lower50 = 0.97;
  p.acc_fluid_upper50 = 0.96;
  p.link.latency_s = 0.0;
  p.link.bandwidth_bytes_per_s = 1e9;
  return p;
}

TEST(TimelineTest, NoEventsIsOneSegment) {
  Fig2Evaluator eval(SimpleProfile());
  const auto summary = SimulateTimeline(eval, DnnType::kFluid,
                                        Mode::kHighThroughput, {}, 10.0);
  ASSERT_EQ(summary.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(summary.segments[0].end, 10.0);
  EXPECT_NEAR(summary.mean_throughput, 20.0, 1e-6);  // both devices at 10
  EXPECT_DOUBLE_EQ(summary.downtime_s, 0.0);
}

TEST(TimelineTest, FluidSurvivesFailureAndRecovers) {
  Fig2Evaluator eval(SimpleProfile());
  const std::vector<AvailabilityEvent> events{
      {2.0, DeviceId::kWorker, false},
      {6.0, DeviceId::kWorker, true},
  };
  const auto summary = SimulateTimeline(eval, DnnType::kFluid,
                                        Mode::kHighThroughput, events, 10.0);
  ASSERT_EQ(summary.segments.size(), 3u);
  EXPECT_NEAR(summary.segments[0].operating_point.throughput_img_per_s, 20.0,
              1e-6);
  EXPECT_NEAR(summary.segments[1].operating_point.throughput_img_per_s, 10.0,
              1e-6);  // master-only
  EXPECT_NEAR(summary.segments[2].operating_point.throughput_img_per_s, 20.0,
              1e-6);
  EXPECT_DOUBLE_EQ(summary.downtime_s, 0.0);
  // 2s·20 + 4s·10 + 4s·20 = 160 images over 10 s.
  EXPECT_NEAR(summary.total_images, 160.0, 1e-6);
}

TEST(TimelineTest, StaticGoesDownOnAnyFailure) {
  Fig2Evaluator eval(SimpleProfile());
  const std::vector<AvailabilityEvent> events{
      {5.0, DeviceId::kMaster, false},
  };
  const auto summary = SimulateTimeline(eval, DnnType::kStatic,
                                        Mode::kHighAccuracy, events, 10.0);
  ASSERT_EQ(summary.segments.size(), 2u);
  EXPECT_FALSE(summary.segments[1].operating_point.operational);
  EXPECT_DOUBLE_EQ(summary.downtime_s, 5.0);
}

TEST(TimelineTest, BothDevicesDownIsTotalOutage) {
  Fig2Evaluator eval(SimpleProfile());
  const std::vector<AvailabilityEvent> events{
      {1.0, DeviceId::kMaster, false},
      {2.0, DeviceId::kWorker, false},
      {3.0, DeviceId::kMaster, true},
  };
  const auto summary = SimulateTimeline(eval, DnnType::kFluid,
                                        Mode::kHighThroughput, events, 4.0);
  ASSERT_EQ(summary.segments.size(), 4u);
  EXPECT_FALSE(summary.segments[2].operating_point.operational);
  EXPECT_DOUBLE_EQ(summary.downtime_s, 1.0);
  // Recovery segment serves with master only.
  EXPECT_TRUE(summary.segments[3].operating_point.operational);
}

TEST(TimelineTest, MeanAccuracyIsImageWeighted) {
  Fig2Evaluator eval(SimpleProfile());
  const std::vector<AvailabilityEvent> events{
      {5.0, DeviceId::kWorker, false},
  };
  const auto summary = SimulateTimeline(eval, DnnType::kFluid,
                                        Mode::kHighThroughput, events, 10.0);
  // First 5 s at 20 img/s (acc mix 0.965), last 5 s at 10 img/s (0.97).
  const double expected =
      (100.0 * 0.965 + 50.0 * 0.97) / 150.0;
  EXPECT_NEAR(summary.mean_accuracy, expected, 1e-9);
}

TEST(TimelineTest, EventsOutsideHorizonIgnored) {
  Fig2Evaluator eval(SimpleProfile());
  const std::vector<AvailabilityEvent> events{
      {15.0, DeviceId::kWorker, false},
      {-1.0, DeviceId::kMaster, false},
  };
  const auto summary = SimulateTimeline(eval, DnnType::kFluid,
                                        Mode::kHighThroughput, events, 10.0);
  EXPECT_EQ(summary.segments.size(), 1u);
}

TEST(TimelineTest, FormatTimelineRendersSegments) {
  Fig2Evaluator eval(SimpleProfile());
  const auto summary = SimulateTimeline(
      eval, DnnType::kFluid, Mode::kHighThroughput,
      {{2.0, DeviceId::kWorker, false}}, 5.0);
  const std::string text = FormatTimeline(summary);
  EXPECT_NE(text.find("Only Master"), std::string::npos);
  EXPECT_NE(text.find("mean throughput"), std::string::npos);
}

}  // namespace
}  // namespace fluid::sim
