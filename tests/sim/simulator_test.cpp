#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace fluid::sim {
namespace {

TEST(SimulatorTest, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.Schedule(1.0, chain);
  };
  sim.Schedule(0.0, chain);
  sim.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 4.0);
}

TEST(SimulatorTest, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(10.0, [&] { ++fired; });
  sim.Run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Empty());
}

TEST(SimulatorTest, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  bool inner_fired = false;
  sim.Schedule(2.0, [&] {
    sim.Schedule(0.0, [&] { inner_fired = true; });
  });
  sim.Run();
  EXPECT_TRUE(inner_fired);
  EXPECT_DOUBLE_EQ(sim.Now(), 2.0);
}

TEST(SimulatorTest, NegativeDelayAndPastScheduleThrow) {
  Simulator sim;
  EXPECT_THROW(sim.Schedule(-1.0, [] {}), core::Error);
  sim.Schedule(5.0, [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(4.0, [] {}), core::Error);
}

TEST(SimulatorTest, StepProcessesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.processed(), 2u);
}

TEST(SimulatorTest, RunToHorizonAdvancesClockWhenIdle) {
  Simulator sim;
  sim.Run(42.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 42.0);
}

}  // namespace
}  // namespace fluid::sim
