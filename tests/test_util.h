#pragma once
// Shared helpers for the test suite: finite-difference gradient checking
// and tiny synthetic fixtures.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/tensor.h"
#include "data/dataset.h"

namespace fluid::testing {

/// Central finite-difference derivative of scalar `f` w.r.t. element `i`
/// of `x` (x is restored afterwards).
inline double NumericalGrad(core::Tensor& x, std::int64_t i,
                            const std::function<double()>& f,
                            double eps = 1e-3) {
  const float saved = x.at(i);
  x.at(i) = saved + static_cast<float>(eps);
  const double up = f();
  x.at(i) = saved - static_cast<float>(eps);
  const double down = f();
  x.at(i) = saved;
  return (up - down) / (2.0 * eps);
}

/// Asserts |analytic - numeric| small for a sample of elements of `param`.
/// `loss` must re-run forward+loss from scratch; `grad` is the analytic
/// gradient tensor after one backward pass (already computed).
inline void ExpectGradientsMatch(core::Tensor& param, const core::Tensor& grad,
                                 const std::function<double()>& loss,
                                 std::int64_t max_checks = 24,
                                 double tol = 2e-2) {
  ASSERT_EQ(param.shape(), grad.shape());
  const std::int64_t n = param.numel();
  const std::int64_t stride = std::max<std::int64_t>(1, n / max_checks);
  for (std::int64_t i = 0; i < n; i += stride) {
    const double num = NumericalGrad(param, i, loss);
    const double ana = grad.at(i);
    const double scale = std::max({1.0, std::fabs(num), std::fabs(ana)});
    EXPECT_NEAR(ana, num, tol * scale)
        << "gradient mismatch at flat index " << i;
  }
}

/// A tiny, quickly separable 2-class image problem: class 0 bright in the
/// top half, class 1 bright in the bottom half, with noise. Useful where a
/// real convergence signal is needed but synthetic MNIST would be slow.
inline data::Dataset MakeToyTwoClass(std::int64_t count, std::int64_t size,
                                     std::uint64_t seed) {
  core::Rng rng(seed);
  data::Dataset ds;
  ds.images = core::Tensor({count, 1, size, size});
  ds.labels.resize(static_cast<std::size_t>(count));
  auto px = ds.images.data();
  const std::int64_t plane = size * size;
  for (std::int64_t n = 0; n < count; ++n) {
    const std::int64_t label = static_cast<std::int64_t>(n % 2);
    ds.labels[static_cast<std::size_t>(n)] = label;
    for (std::int64_t y = 0; y < size; ++y) {
      for (std::int64_t x = 0; x < size; ++x) {
        const bool bright = (label == 0) ? (y < size / 2) : (y >= size / 2);
        const double v = (bright ? 0.9 : 0.1) + rng.Normal(0.0, 0.05);
        px[static_cast<std::size_t>(n * plane + y * size + x)] =
            static_cast<float>(std::clamp(v, 0.0, 1.0));
      }
    }
  }
  return ds;
}

}  // namespace fluid::testing
